(* Tests for the serving subsystem: admission queues, workload
   generators, the serving loop on both hardware modes, resource
   contention on the sePCR pool, and report determinism. *)

open Sea_sim
open Sea_serve

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let machine ?(seed = 11L) ?(cores = 2) ?sepcr_count proposed =
  let config = Sea_hw.Machine.low_fidelity Sea_hw.Machine.hp_dc5750 in
  let config =
    if proposed then Sea_hw.Machine.proposed_variant ?sepcr_count config
    else config
  in
  let config = { config with Sea_hw.Machine.cpu_count = cores } in
  Sea_hw.Machine.create ~engine:(Engine.create ~seed ()) config

let serve ?seed ?cores ?sepcr_count ?(depth = 16) ?discipline ?analyze ?timer
    ~mode ~duration tenants =
  let proposed_hw =
    match mode with
    | Server.Proposed -> true
    | Server.Current | Server.Sfi -> false
  in
  let m = machine ?seed ?cores ?sepcr_count proposed_hw in
  let cfg =
    Server.config ~queue_depth:depth ?discipline ?analyze
      ?preemption_timer:timer ~mode ~duration ()
  in
  match Server.run m cfg tenants with
  | Ok r -> r
  | Error e -> Alcotest.fail ("serve: " ^ e)

let row_consistent (r : Report.t) =
  List.for_all
    (fun (row : Report.row) ->
      row.Report.offered
      = row.Report.completed + row.Report.shed + row.Report.timed_out
        + row.Report.failed)
    (r.Report.aggregate :: r.Report.rows)

let aggregate_sums (r : Report.t) =
  let sum f = List.fold_left (fun acc row -> acc + f row) 0 r.Report.rows in
  let a = r.Report.aggregate in
  a.Report.offered = sum (fun (x : Report.row) -> x.Report.offered)
  && a.Report.completed = sum (fun x -> x.Report.completed)
  && a.Report.shed = sum (fun x -> x.Report.shed)
  && a.Report.timed_out = sum (fun x -> x.Report.timed_out)
  && a.Report.failed = sum (fun x -> x.Report.failed)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- admission --- *)

let test_admission_fifo () =
  let q = Admission.create ~discipline:Admission.Fifo ~depth:3 ~weights:[| 1; 1 |] in
  checkb "a" true (Admission.offer q ~tenant:0 "a");
  checkb "b" true (Admission.offer q ~tenant:1 "b");
  checkb "c" true (Admission.offer q ~tenant:0 "c");
  checkb "full" false (Admission.offer q ~tenant:1 "d");
  checki "high water" 3 (Admission.high_water q);
  checkb "fifo order" true
    (List.init 3 (fun _ -> Admission.take q)
    = [ Some (0, "a"); Some (1, "b"); Some (0, "c") ]);
  checkb "empty" true (Admission.take q = None);
  checki "length" 0 (Admission.length q)

let test_admission_weighted_shares () =
  let q =
    Admission.create ~discipline:Admission.Weighted ~depth:16
      ~weights:[| 1; 2 |]
  in
  for i = 0 to 5 do
    ignore (Admission.offer q ~tenant:(i mod 2) i)
  done;
  let order =
    List.init 6 (fun _ ->
        match Admission.take q with Some (t, _) -> t | None -> -1)
  in
  (* Weight 1 vs 2: one dequeue for tenant 0 per two for tenant 1 while
     both are backlogged; tenant 1 drains after its third item, so the
     final slot falls back to tenant 0. *)
  checkb "wrr order" true (order = [ 0; 1; 1; 0; 1; 0 ])

let test_admission_weighted_donates () =
  let q =
    Admission.create ~discipline:Admission.Weighted ~depth:4 ~weights:[| 3; 1 |]
  in
  (* Only the light tenant is backlogged: it gets every slot. *)
  for i = 0 to 3 do
    ignore (Admission.offer q ~tenant:1 i)
  done;
  let order =
    List.init 4 (fun _ ->
        match Admission.take q with Some (t, _) -> t | None -> -1)
  in
  checkb "idle tenant donates" true (order = [ 1; 1; 1; 1 ])

let test_admission_weighted_per_tenant_depth () =
  let q =
    Admission.create ~discipline:Admission.Weighted ~depth:2 ~weights:[| 1; 1 |]
  in
  checkb "t0 1" true (Admission.offer q ~tenant:0 0);
  checkb "t0 2" true (Admission.offer q ~tenant:0 1);
  checkb "t0 full" false (Admission.offer q ~tenant:0 2);
  checkb "t1 unaffected" true (Admission.offer q ~tenant:1 3);
  checki "t0 high water" 2 (Admission.tenant_high_water q 0)

let test_admission_cost_budget () =
  let q =
    Admission.create ~discipline:(Admission.Cost 10) ~depth:16
      ~weights:[| 1; 1 |]
  in
  checkb "fits" true (Admission.offer q ~cost:6 ~tenant:0 "a");
  checkb "fills the budget" true (Admission.offer q ~cost:4 ~tenant:0 "b");
  (* 10 units already in flight: one more unit is a budget shed, and it
     is counted separately from depth sheds. *)
  checkb "over budget" false (Admission.offer q ~cost:1 ~tenant:0 "c");
  checki "counted as a cost shed" 1 (Admission.cost_shed q);
  (* Budgets are per tenant. *)
  checkb "t1 has its own budget" true (Admission.offer q ~cost:10 ~tenant:1 "d");
  (* Draining releases budget: both tenants hold 10 units, so the tie
     goes to tenant 0, whose head request (6 units) frees room. *)
  checkb "tie to the lowest index" true (Admission.take q = Some (0, "a"));
  checkb "released budget readmits" true
    (Admission.offer q ~cost:6 ~tenant:0 "e");
  checki "no further cost sheds" 1 (Admission.cost_shed q)

let test_admission_cost_cheapest_first () =
  let q =
    Admission.create ~discipline:(Admission.Cost 100) ~depth:16
      ~weights:[| 1; 1; 1 |]
  in
  (* Tenant 0 queues the expensive backlog; tenants 1 and 2 tie cheap. *)
  checkb "t0" true (Admission.offer q ~cost:30 ~tenant:0 "exp");
  checkb "t1" true (Admission.offer q ~cost:5 ~tenant:1 "cheap1");
  checkb "t2" true (Admission.offer q ~cost:5 ~tenant:2 "cheap2");
  (* Cheapest backlog drains first, ties to the lowest index, and the
     expensive tenant waits without being starved forever. *)
  checkb "cheapest-first order" true
    (List.init 3 (fun _ -> Admission.take q)
    = [ Some (1, "cheap1"); Some (2, "cheap2"); Some (0, "exp") ]);
  checkb "empty" true (Admission.take q = None)

let test_admission_cost_validation () =
  Alcotest.check_raises "zero budget"
    (Invalid_argument "Admission.create: cost budget must be positive")
    (fun () ->
      ignore
        (Admission.create ~discipline:(Admission.Cost 0) ~depth:1
           ~weights:[| 1 |]));
  let q =
    Admission.create ~discipline:(Admission.Cost 5) ~depth:1 ~weights:[| 1 |]
  in
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Admission.offer: negative cost") (fun () ->
      ignore (Admission.offer q ~cost:(-1) ~tenant:0 "x"))

(* --- workload --- *)

let test_workload_validation () =
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Workload.tenant: rate must be positive") (fun () ->
      ignore
        (Workload.tenant ~name:"x" (Workload.Open_loop { rate_per_s = 0. })));
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Workload.tenant: weight must be positive") (fun () ->
      ignore
        (Workload.tenant ~weight:0 ~name:"x"
           (Workload.Open_loop { rate_per_s = 1. })));
  Alcotest.check_raises "bad clients"
    (Invalid_argument "Workload.tenant: clients must be positive") (fun () ->
      ignore
        (Workload.tenant ~name:"x"
           (Workload.Closed_loop { clients = 0; think = Time.zero })))

let test_sepcr_count_validation () =
  Alcotest.check_raises "zero sePCRs"
    (Invalid_argument "Machine.proposed_variant: sepcr_count must be >= 1")
    (fun () ->
      ignore
        (Sea_hw.Machine.proposed_variant ~sepcr_count:0
           Sea_hw.Machine.hp_dc5750))

let test_config_validation () =
  Alcotest.check_raises "bad duration"
    (Invalid_argument "Server.config: duration must be positive") (fun () ->
      ignore (Server.config ~mode:Server.Current ~duration:Time.zero ()));
  Alcotest.check_raises "bad depth"
    (Invalid_argument "Server.config: queue depth must be positive") (fun () ->
      ignore
        (Server.config ~queue_depth:0 ~mode:Server.Current
           ~duration:(Time.s 1.) ()));
  (* Proposed mode needs the proposed hardware. *)
  let m = machine false in
  let cfg = Server.config ~mode:Server.Proposed ~duration:(Time.s 1.) () in
  checkb "mode/machine mismatch" true
    (match Server.run m cfg (Workload.preset ~tenants:1 (`Open 1.)) with
    | Error _ -> true
    | Ok _ -> false)

(* --- serving: overload behaviour on today's hardware --- *)

let test_current_sheds_on_overflow () =
  let r =
    serve ~mode:Server.Current ~depth:2 ~duration:(Time.s 2.)
      (Workload.preset ~tenants:2 (`Open 10.))
  in
  checkb "sheds under overload" true (r.Report.aggregate.Report.shed > 0);
  checkb "rows consistent" true (row_consistent r);
  checkb "aggregate sums rows" true (aggregate_sums r);
  checkb "queue hit its bound" true (r.Report.aggregate.Report.queue_high_water = 2)

let test_current_deadline_timeouts () =
  let r =
    serve ~mode:Server.Current ~depth:64 ~duration:(Time.s 2.)
      (Workload.preset ~deadline:(Time.ms 200.) ~tenants:1 (`Open 4.))
  in
  checkb "timeouts under overload" true
    (r.Report.aggregate.Report.timed_out > 0);
  checkb "deep queue does not shed" true (r.Report.aggregate.Report.shed = 0);
  checkb "rows consistent" true (row_consistent r)

let test_current_stalls_platform () =
  let r =
    serve ~mode:Server.Current ~duration:(Time.s 1.)
      (Workload.preset ~tenants:1 (`Open 2.))
  in
  checkb "platform stalled" true
    (Time.compare r.Report.stalled Time.zero > 0);
  checki "one stall interval per request served"
    (r.Report.aggregate.Report.completed + r.Report.aggregate.Report.failed)
    (Stats.count r.Report.stall_ms);
  checkb "no residents on current hw" true
    (r.Report.cold_starts = 0 && r.Report.warm_hits = 0);
  checkb "rows consistent" true (row_consistent r)

(* --- serving: the proposed hardware --- *)

let test_proposed_warm_reuse () =
  let r =
    serve ~mode:Server.Proposed ~duration:(Time.s 2.)
      [ Workload.tenant ~name:"t0" (Workload.Open_loop { rate_per_s = 20. }) ]
  in
  let a = r.Report.aggregate in
  checki "one cold start" 1 r.Report.cold_starts;
  checki "everything else warm" (a.Report.offered - 1) r.Report.warm_hits;
  checkb "nothing lost" true (a.Report.completed = a.Report.offered);
  checkb "platform never stalls" true
    (Time.compare r.Report.stalled Time.zero = 0
    && Stats.count r.Report.stall_ms = 0);
  checkb "rows consistent" true (row_consistent r)

let test_proposed_sepcr_pool_blocks () =
  (* One sePCR, two tenants of different kinds, two concurrent clients
     each: every switch of kind must evict the other tenant's resident,
     and concurrent bursts force waits on the busy victim. *)
  let tenants =
    [
      Workload.tenant ~name:"a"
        ~mix:[ (Workload.Ssh_auth, 1) ]
        (Workload.Closed_loop { clients = 2; think = Time.zero });
      Workload.tenant ~name:"b"
        ~mix:[ (Workload.Ca_sign, 1) ]
        (Workload.Closed_loop { clients = 2; think = Time.zero });
    ]
  in
  let r =
    serve ~mode:Server.Proposed ~sepcr_count:1 ~duration:(Time.ms 500.) tenants
  in
  checkb "evictions happened" true (r.Report.evictions > 0);
  checkb "cold starts beyond the first two" true (r.Report.cold_starts > 2);
  checkb "some cold starts waited on the pool" true (r.Report.sepcr_waits > 0);
  checki "one wait sample per blocked start" r.Report.sepcr_waits
    (Stats.count r.Report.sepcr_wait_ms);
  checkb "rows consistent" true (row_consistent r)

let test_proposed_ample_pool_never_waits () =
  let r =
    serve ~mode:Server.Proposed ~sepcr_count:8 ~duration:(Time.s 1.)
      (Workload.preset ~tenants:3 (`Open 12.))
  in
  checkb "no eviction with an ample bank" true
    (r.Report.evictions = 0 && r.Report.sepcr_waits = 0);
  checki "one cold start per (tenant, kind)" 3 r.Report.cold_starts;
  checkb "rows consistent" true (row_consistent r)

(* --- generators --- *)

let test_open_vs_closed_loop () =
  (* Open loop keeps offering regardless of service speed; a single
     closed-loop client is paced by it. On today's ~1 s/request
     hardware the difference is stark. *)
  let duration = Time.s 2. in
  let open_r =
    serve ~mode:Server.Current ~duration
      [ Workload.tenant ~name:"t" (Workload.Open_loop { rate_per_s = 5. }) ]
  in
  let closed_r =
    serve ~mode:Server.Current ~duration
      [
        Workload.tenant ~name:"t"
          (Workload.Closed_loop { clients = 1; think = Time.zero });
      ]
  in
  checkb "open loop overruns service" true
    (open_r.Report.aggregate.Report.offered
    > closed_r.Report.aggregate.Report.offered);
  checkb "closed loop never sheds" true
    (closed_r.Report.aggregate.Report.shed = 0);
  checkb "closed loop served everything it sent" true
    (closed_r.Report.aggregate.Report.completed
    = closed_r.Report.aggregate.Report.offered);
  checkb "rows consistent (open)" true (row_consistent open_r);
  checkb "rows consistent (closed)" true (row_consistent closed_r)

let test_closed_loop_shed_with_zero_think_terminates () =
  (* Regression: a shed closed-loop client with zero think time used to
     reissue at the same virtual instant against a still-full queue,
     livelocking the event loop. Shed clients must instead retry once a
     core frees, so the run terminates and every client keeps cycling. *)
  let r =
    serve ~mode:Server.Current ~depth:2 ~duration:(Time.s 1.)
      [
        Workload.tenant ~name:"t"
          (Workload.Closed_loop { clients = 10; think = Time.zero });
      ]
  in
  checkb "overflowed the queue" true (r.Report.aggregate.Report.shed > 0);
  checkb "still made progress" true (r.Report.aggregate.Report.completed > 0);
  checkb "rows consistent" true (row_consistent r)

let test_closed_loop_self_paces () =
  (* A single closed-loop client can never queue behind itself. *)
  let r =
    serve ~mode:Server.Proposed ~duration:(Time.s 1.)
      [
        Workload.tenant ~name:"t"
          (Workload.Closed_loop { clients = 1; think = Time.ms 5. });
      ]
  in
  checkb "no queueing" true (r.Report.aggregate.Report.queue_high_water <= 1);
  checkb "served all" true
    (r.Report.aggregate.Report.completed = r.Report.aggregate.Report.offered);
  checkb "rows consistent" true (row_consistent r)

(* --- per-tenant accounting --- *)

let test_per_tenant_accounting () =
  let tenants =
    [
      Workload.tenant ~name:"slow" (Workload.Open_loop { rate_per_s = 4. });
      Workload.tenant ~name:"fast" (Workload.Open_loop { rate_per_s = 16. });
    ]
  in
  let r = serve ~mode:Server.Proposed ~duration:(Time.s 2.) tenants in
  let row name =
    List.find (fun (x : Report.row) -> x.Report.tenant = name) r.Report.rows
  in
  checkb "offered follows rate" true
    ((row "fast").Report.offered > (row "slow").Report.offered);
  checkb "aggregate sums rows" true (aggregate_sums r);
  checkb "rows consistent" true (row_consistent r);
  checkb "latency recorded per tenant" true
    (Stats.count (row "slow").Report.latency_ms = (row "slow").Report.completed)

(* --- the headline comparison --- *)

let test_proposed_10x_goodput () =
  (* Same seed, same workload, at a rate where today's hardware is deep
     into shedding: the proposed hardware must sustain >= 10x the
     goodput (the ISSUE's acceptance criterion). *)
  let tenants () = Workload.preset ~tenants:3 (`Open 16.) in
  let duration = Time.s 3. in
  let current =
    serve ~seed:5L ~mode:Server.Current ~depth:8 ~duration (tenants ())
  in
  let proposed =
    serve ~seed:5L ~mode:Server.Proposed ~depth:8 ~duration (tenants ())
  in
  checkb "current hardware is shedding" true
    (current.Report.aggregate.Report.shed > 0);
  checkb "rows consistent (current)" true (row_consistent current);
  checkb "rows consistent (proposed)" true (row_consistent proposed);
  checkb "aggregate sums rows (current)" true (aggregate_sums current);
  checkb "aggregate sums rows (proposed)" true (aggregate_sums proposed);
  let goodput r = Report.goodput_per_s r r.Report.aggregate in
  checkb "proposed sustains >= 10x goodput" true
    (goodput proposed >= 10. *. goodput current)

(* --- determinism --- *)

let test_identical_seeds_identical_reports () =
  let go mode =
    let r1 =
      serve ~seed:9L ~mode ~duration:(Time.s 1.)
        (Workload.preset ~tenants:3 (`Open 12.))
    in
    let r2 =
      serve ~seed:9L ~mode ~duration:(Time.s 1.)
        (Workload.preset ~tenants:3 (`Open 12.))
    in
    checkb "rows consistent" true (row_consistent r1);
    Alcotest.(check string)
      ("bit-identical replay, " ^ Server.mode_name mode)
      (Report.render r1) (Report.render r2)
  in
  go Server.Current;
  go Server.Proposed

let test_different_seeds_differ () =
  let go seed =
    let r =
      serve ~seed ~mode:Server.Proposed ~duration:(Time.s 1.)
        (Workload.preset ~tenants:3 (`Open 12.))
    in
    checkb "rows consistent" true (row_consistent r);
    r
  in
  checkb "different seeds give different traffic" true
    (Report.render (go 1L) <> Report.render (go 2L))

(* --- analysis gate and cost-aware admission --- *)

let test_analysis_cache_exactly_once () =
  (* The certificate cache is process-wide and content-addressed, so a
     gated serve run analyzes each distinct workload image at most
     once, and a second run (even with a different seed) re-analyzes
     nothing. *)
  let gated seed =
    serve ~seed ~analyze:Sea_analysis.Analyzer.Enforce ~mode:Server.Proposed
      ~duration:(Time.s 1.)
      (Workload.preset ~tenants:3 (`Open 8.))
  in
  let r = gated 3L in
  checkb "gated run completes work" true
    (r.Report.aggregate.Report.completed > 0);
  let after_first = Sea_core.Pal.analysis_runs () in
  checkb "something was analyzed" true (after_first > 0);
  let (_ : Report.t) = gated 4L in
  checki "second run is all cache hits" after_first
    (Sea_core.Pal.analysis_runs ());
  (* Certificate pricing rides the same cache as the launch gate. *)
  List.iter (fun k -> ignore (Workload.static_cost k)) Workload.kinds;
  checki "certificates are cache hits too" after_first
    (Sea_core.Pal.analysis_runs ())

let test_enforce_gate_byte_identical_report () =
  (* All shipped workload images are clean and bounded, so turning the
     gate on must not change a single byte of the report. *)
  let go analyze =
    Report.render
      (serve ?analyze ~seed:7L ~mode:Server.Proposed ~duration:(Time.s 1.)
         (Workload.preset ~tenants:3 (`Open 10.)))
  in
  Alcotest.(check string) "enforce leaves the report byte-identical"
    (go None)
    (go (Some Sea_analysis.Analyzer.Enforce))

let test_cost_admission_serves_and_reports () =
  (* A budget with room for every kind: nothing is cost-shed, and the
     report grows the cost line with the configured budget. *)
  let budget = 4_000_000 in
  let r =
    serve ~discipline:(Admission.Cost budget) ~mode:Server.Proposed
      ~duration:(Time.s 2.)
      (Workload.preset ~tenants:3 (`Open 10.))
  in
  checkb "rows consistent" true (row_consistent r);
  checkb "work completes under cost admission" true
    (r.Report.aggregate.Report.completed > 0);
  checkb "budget surfaced in the report" true
    (r.Report.cost_budget = Some budget);
  checkb "cost line renders" true
    (contains "cost admission: budget" (Report.render r))

let test_cost_admission_sheds_expensive_kinds () =
  (* A budget below the CA and KV certificate costs: only SSH requests
     fit, the rest are cost-shed and counted both as sheds and in the
     dedicated cost_shed counter. *)
  let r =
    serve ~discipline:(Admission.Cost 1_000) ~mode:Server.Proposed
      ~duration:(Time.s 2.)
      (Workload.preset ~tenants:3 (`Open 10.))
  in
  checkb "rows consistent" true (row_consistent r);
  checkb "expensive kinds are cost-shed" true (r.Report.cost_shed > 0);
  checkb "cost sheds are visible as sheds" true
    (r.Report.aggregate.Report.shed >= r.Report.cost_shed);
  checkb "cheap work still completes" true
    (r.Report.aggregate.Report.completed > 0)

(* --- zero-completion rendering --- *)

let test_zero_completion_report_renders () =
  (* An all-shed run leaves every latency accumulator empty; the report
     must render dashes for the percentiles instead of raising. *)
  let empty_row tenant =
    {
      Report.tenant;
      weight = 1;
      offered = 5;
      completed = 0;
      shed = 5;
      timed_out = 0;
      failed = 0;
      latency_ms = Stats.create ();
      queue_high_water = 1;
    }
  in
  let r =
    {
      Report.mode = "current";
      machine = "synthetic";
      cores = 2;
      discipline = "fifo";
      depth = 1;
      cost_budget = None;
      cost_shed = 0;
      window = Time.s 1.;
      rows = [ empty_row "t0" ];
      aggregate = empty_row "all";
      pal_busy = Time.zero;
      legacy_utilization = 1.;
      stalled = Time.zero;
      stall_ms = Stats.create ();
      cold_starts = 0;
      warm_hits = 0;
      evictions = 0;
      sepcr_waits = 0;
      sepcr_wait_ms = Stats.create ();
      faults_injected = [];
      fault_stall = Time.zero;
      retries = 0;
      retry_give_ups = 0;
      breaker_shed = 0;
      breaker_transitions = 0;
      degraded = Time.zero;
      recoveries = 0;
      vtpm = None;
    }
  in
  let s = Report.render r in
  checkb "renders" true (String.length s > 0);
  checkb "empty percentiles render as dashes" true (contains "-/-/-" s);
  checkb "no robustness lines on a fault-free report" true
    (not (Report.robustness_active r));
  checkb "rows consistent" true (row_consistent r)

let test_starved_deadline_run_renders () =
  (* End-to-end: a run where nearly everything dies at the deadline
     still produces a consistent, renderable report. *)
  let r =
    serve ~mode:Server.Current ~depth:64 ~duration:(Time.s 2.)
      (Workload.preset ~deadline:(Time.us 1.) ~tenants:1 (`Open 4.))
  in
  checkb "requests timed out" true (r.Report.aggregate.Report.timed_out > 0);
  checkb "rows consistent" true (row_consistent r);
  checkb "renders" true (String.length (Report.render r) > 0)

let () =
  Alcotest.run "serve"
    [
      ( "admission",
        [
          Alcotest.test_case "fifo order and bound" `Quick test_admission_fifo;
          Alcotest.test_case "weighted shares" `Quick
            test_admission_weighted_shares;
          Alcotest.test_case "idle tenant donates" `Quick
            test_admission_weighted_donates;
          Alcotest.test_case "per-tenant depth" `Quick
            test_admission_weighted_per_tenant_depth;
          Alcotest.test_case "cost budget sheds" `Quick
            test_admission_cost_budget;
          Alcotest.test_case "cheapest backlog first" `Quick
            test_admission_cost_cheapest_first;
          Alcotest.test_case "cost validation" `Quick
            test_admission_cost_validation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "tenant validation" `Quick
            test_workload_validation;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "sePCR count validation" `Quick
            test_sepcr_count_validation;
        ] );
      ( "current-hw",
        [
          Alcotest.test_case "sheds on overflow" `Quick
            test_current_sheds_on_overflow;
          Alcotest.test_case "deadline timeouts" `Quick
            test_current_deadline_timeouts;
          Alcotest.test_case "stalls the platform" `Quick
            test_current_stalls_platform;
        ] );
      ( "proposed-hw",
        [
          Alcotest.test_case "warm resident reuse" `Quick
            test_proposed_warm_reuse;
          Alcotest.test_case "sePCR pool blocks" `Quick
            test_proposed_sepcr_pool_blocks;
          Alcotest.test_case "ample pool never waits" `Quick
            test_proposed_ample_pool_never_waits;
        ] );
      ( "generators",
        [
          Alcotest.test_case "open vs closed loop" `Quick
            test_open_vs_closed_loop;
          Alcotest.test_case "closed loop self-paces" `Quick
            test_closed_loop_self_paces;
          Alcotest.test_case "shed with zero think terminates" `Quick
            test_closed_loop_shed_with_zero_think_terminates;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "per-tenant accounting" `Quick
            test_per_tenant_accounting;
          Alcotest.test_case "proposed >= 10x goodput" `Quick
            test_proposed_10x_goodput;
          Alcotest.test_case "identical seeds, identical reports" `Quick
            test_identical_seeds_identical_reports;
          Alcotest.test_case "different seeds differ" `Quick
            test_different_seeds_differ;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "analysis cache hits exactly once" `Quick
            test_analysis_cache_exactly_once;
          Alcotest.test_case "enforce gate byte-identical" `Quick
            test_enforce_gate_byte_identical_report;
          Alcotest.test_case "cost admission serves and reports" `Quick
            test_cost_admission_serves_and_reports;
          Alcotest.test_case "cost admission sheds expensive kinds" `Quick
            test_cost_admission_sheds_expensive_kinds;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "zero-completion report renders" `Quick
            test_zero_completion_report_renders;
          Alcotest.test_case "starved-deadline run renders" `Quick
            test_starved_deadline_run_renders;
        ] );
    ]
