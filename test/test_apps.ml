(* Application tests: the four SEA-enhanced applications of §4.1, each
   exercised through full sessions on the simulated HP dc5750, plus codec
   roundtrips and cross-PAL isolation checks. *)

open Sea_hw
open Sea_apps

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let ok = function Ok x -> x | Error e -> Alcotest.fail e
let expect_error = function Error _ -> () | Ok _ -> Alcotest.fail "expected error"

let machine () = Machine.create (Machine.low_fidelity Machine.hp_dc5750)

(* --- Codec --- *)

let test_codec_command_roundtrip () =
  let framed = Codec.command "verb" [ "a"; ""; "binary\x00\xff" ] in
  (match Codec.parse_command framed with
  | Some ("verb", [ "a"; ""; "binary\x00\xff" ]) -> ()
  | _ -> Alcotest.fail "roundtrip failed");
  checkb "junk rejected" true (Codec.parse_command "junk" = None)

let test_codec_rsa_roundtrip () =
  let key = Sea_crypto.Rsa.generate ~bits:256 (Sea_crypto.Drbg.create ~seed:"codec") in
  (match Codec.rsa_private_of_string (Codec.rsa_private_to_string key) with
  | Some k ->
      checkb "private roundtrip" true (Sea_crypto.Bignum.equal k.Sea_crypto.Rsa.d key.Sea_crypto.Rsa.d)
  | None -> Alcotest.fail "private roundtrip failed");
  (match Codec.rsa_public_of_string (Codec.rsa_public_to_string key.Sea_crypto.Rsa.pub) with
  | Some p ->
      checkb "public roundtrip" true
        (Sea_crypto.Bignum.equal p.Sea_crypto.Rsa.n key.Sea_crypto.Rsa.pub.Sea_crypto.Rsa.n)
  | None -> Alcotest.fail "public roundtrip failed");
  checkb "garbage public rejected" true (Codec.rsa_public_of_string "xx" = None)

(* --- Certificate authority --- *)

let test_ca_issue_and_verify () =
  let m = machine () in
  let ca = ok (Cert_authority.init m ~cpu:0 ()) in
  let cert = ok (Cert_authority.sign_csr m ~cpu:0 ca ~csr:"CN=alice,O=example") in
  checkb "certificate verifies" true
    (Cert_authority.verify_certificate ca ~csr:"CN=alice,O=example" ~signature:cert);
  checkb "different CSR rejected" false
    (Cert_authority.verify_certificate ca ~csr:"CN=mallory" ~signature:cert)

let test_ca_key_never_leaves_sealed () =
  let m = machine () in
  let ca = ok (Cert_authority.init m ~cpu:0 ()) in
  (* The OS-visible state is the sealed blob; unsealing from the OS after
     the session must fail (exit marker). *)
  let tpm = Machine.tpm_exn m in
  (match Sea_tpm.Tpm.unseal tpm ~caller:Sea_tpm.Tpm.Software ca.Cert_authority.sealed_key with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "CA key leaked to the OS")

let test_ca_distinct_instances () =
  let m = machine () in
  let ca1 = ok (Cert_authority.init m ~cpu:0 ()) in
  let ca2 = ok (Cert_authority.init m ~cpu:0 ()) in
  (* Two inits draw different TPM randomness: different keys. *)
  checkb "independent CAs" false
    (Sea_crypto.Bignum.equal ca1.Cert_authority.public.Sea_crypto.Rsa.n
       ca2.Cert_authority.public.Sea_crypto.Rsa.n);
  (* A cert from ca1 does not verify under ca2. *)
  let cert = ok (Cert_authority.sign_csr m ~cpu:0 ca1 ~csr:"CN=x") in
  checkb "cross-CA verification fails" false
    (Cert_authority.verify_certificate ca2 ~csr:"CN=x" ~signature:cert)

(* --- SSH password handling --- *)

let test_ssh_auth_flow () =
  let m = machine () in
  let acct = ok (Ssh_password.setup m ~cpu:0 ~user:"admin" ~password:"correct horse") in
  checkb "right password" true (ok (Ssh_password.authenticate m ~cpu:0 acct ~password:"correct horse"));
  checkb "wrong password" false (ok (Ssh_password.authenticate m ~cpu:0 acct ~password:"battery staple"));
  checkb "empty password" false (ok (Ssh_password.authenticate m ~cpu:0 acct ~password:""))

let test_ssh_record_opaque_to_os () =
  let m = machine () in
  let acct = ok (Ssh_password.setup m ~cpu:0 ~user:"admin" ~password:"s3cret") in
  (* The sealed record does not contain the password or its hash in
     cleartext. *)
  let record = acct.Ssh_password.sealed_record in
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    n > 0 && go 0
  in
  checkb "password not in blob" false (contains ~needle:"s3cret" record);
  checkb "username not in blob" false (contains ~needle:"admin" record)

let test_ssh_tampered_record_rejected () =
  let m = machine () in
  let acct = ok (Ssh_password.setup m ~cpu:0 ~user:"admin" ~password:"pw") in
  let r = acct.Ssh_password.sealed_record in
  let tampered =
    String.mapi
      (fun i c -> if i = String.length r / 2 then Char.chr (Char.code c lxor 1) else c)
      r
  in
  expect_error
    (Ssh_password.authenticate m ~cpu:0
       { acct with Ssh_password.sealed_record = tampered }
       ~password:"pw")

(* --- Rootkit detector --- *)

let test_rootkit_clean_and_infected () =
  let m = machine () in
  let image = Rootkit_detector.make_kernel_image ~seed:"vmlinuz-2.6.20" () in
  let whitelist = Rootkit_detector.whitelist_digest image in
  checkb "clean kernel" true (ok (Rootkit_detector.check m ~cpu:0 ~whitelist ~kernel_image:image));
  let infected = Rootkit_detector.infect image ~at:31337 in
  checkb "one-byte rootkit detected" false
    (ok (Rootkit_detector.check m ~cpu:0 ~whitelist ~kernel_image:infected))

let test_rootkit_verdict_attested () =
  (* The verdict is folded into PCR 17, so the post-session value differs
     between a clean run and an infected run — an attacker cannot replay a
     "clean" attestation. *)
  let image = Rootkit_detector.make_kernel_image ~seed:"k" () in
  let whitelist = Rootkit_detector.whitelist_digest image in
  let pcr_after verdict_image =
    let m = machine () in
    ignore (ok (Rootkit_detector.check m ~cpu:0 ~whitelist ~kernel_image:verdict_image));
    Sea_tpm.Tpm.pcr_read (Machine.tpm_exn m) 17
  in
  checkb "verdict changes the measurement chain" true
    (pcr_after image <> pcr_after (Rootkit_detector.infect image ~at:5))

let test_rootkit_deterministic_image () =
  checks "image deterministic"
    (Rootkit_detector.make_kernel_image ~seed:"a" ())
    (Rootkit_detector.make_kernel_image ~seed:"a" ());
  checkb "seed matters" true
    (Rootkit_detector.make_kernel_image ~seed:"a" ()
    <> Rootkit_detector.make_kernel_image ~seed:"b" ())

(* --- Distributed factoring --- *)

let test_factoring_small () =
  let m = machine () in
  let fs, sessions = ok (Factoring.run_to_completion m ~cpu:0 ~n:(2 * 3 * 5 * 7) ~range:10 ()) in
  Alcotest.(check (list int)) "factors" [ 2; 3; 5; 7 ] fs;
  checkb "at least one session" true (sessions >= 1)

let test_factoring_multi_session () =
  let m = machine () in
  (* 101 × 103 with a tiny range forces several seal/unseal round trips. *)
  let fs, sessions = ok (Factoring.run_to_completion m ~cpu:0 ~n:(101 * 103) ~range:25 ()) in
  Alcotest.(check (list int)) "factors" [ 101; 103 ] fs;
  checkb (Printf.sprintf "multiple sessions (got %d)" sessions) true (sessions >= 3)

let test_factoring_prime_input () =
  let m = machine () in
  let fs, _ = ok (Factoring.run_to_completion m ~cpu:0 ~n:9973 ~range:200 ()) in
  Alcotest.(check (list int)) "prime returns itself" [ 9973 ] fs

let test_factoring_state_integrity () =
  let m = machine () in
  (match Factoring.start m ~cpu:0 ~n:(101 * 103) ~range:10 with
  | Ok (Factoring.Running blob) ->
      (* The OS tampers with the sealed intermediate state. *)
      let tampered =
        String.mapi
          (fun i c -> if i = String.length blob / 2 then Char.chr (Char.code c lxor 1) else c)
          blob
      in
      expect_error (Factoring.step m ~cpu:0 ~blob:tampered ~range:10)
  | Ok (Factoring.Factored _) -> Alcotest.fail "finished too early for this test"
  | Error e -> Alcotest.fail e)

let test_factoring_session_budget () =
  let m = machine () in
  expect_error
    (Factoring.run_to_completion m ~cpu:0 ~n:(1_000_003 * 999_983) ~range:10
       ~max_sessions:3 ())

(* --- Cross-application isolation --- *)

let test_cross_app_seal_isolation () =
  (* The SSH PAL cannot unseal the CA's blob: different measurements. *)
  let m = machine () in
  let ca = ok (Cert_authority.init m ~cpu:0 ()) in
  let fake_acct = { Ssh_password.user = "x"; sealed_record = ca.Cert_authority.sealed_key } in
  expect_error (Ssh_password.authenticate m ~cpu:0 fake_acct ~password:"x")

let test_app_measurements_distinct () =
  let ms =
    List.map Sea_core.Pal.measurement
      [ Cert_authority.pal (); Ssh_password.pal (); Rootkit_detector.pal (); Factoring.pal () ]
  in
  checki "four distinct identities" 4 (List.length (List.sort_uniq String.compare ms))


(* --- BIND-style BGP attestation --- *)

let test_bgp_chain () =
  let m = machine () in
  let r1 = ok (Bgp_attest.init_router m ~cpu:0 ~asn:64512) in
  let r2 = ok (Bgp_attest.init_router m ~cpu:0 ~asn:64513) in
  let r3 = ok (Bgp_attest.init_router m ~cpu:0 ~asn:64514) in
  let u1 = ok (Bgp_attest.originate m ~cpu:0 r1 ~prefix:"10.0.0.0/8") in
  let u2 = ok (Bgp_attest.forward m ~cpu:0 r2 u1 ~predecessor:r1.Bgp_attest.public) in
  let u3 = ok (Bgp_attest.forward m ~cpu:0 r3 u2 ~predecessor:r2.Bgp_attest.public) in
  Alcotest.(check (list int)) "path accumulates" [ 64514; 64513; 64512 ]
    u3.Bgp_attest.as_path;
  let publics =
    [ (64512, r1.Bgp_attest.public); (64513, r2.Bgp_attest.public);
      (64514, r3.Bgp_attest.public) ]
  in
  checkb "route collector accepts the chain" true
    (Bgp_attest.verify_chain u3 ~publics)

let test_bgp_forged_hop_refused () =
  (* A compromised router OS injects an update with a fabricated last
     hop: the PAL's protected logic refuses to propagate it. *)
  let m = machine () in
  let r1 = ok (Bgp_attest.init_router m ~cpu:0 ~asn:1) in
  let r2 = ok (Bgp_attest.init_router m ~cpu:0 ~asn:2) in
  let u1 = ok (Bgp_attest.originate m ~cpu:0 r1 ~prefix:"192.168.0.0/16") in
  let forged = { u1 with Bgp_attest.as_path = [ 666 ] } in
  expect_error (Bgp_attest.forward m ~cpu:0 r2 forged ~predecessor:r1.Bgp_attest.public)

let test_bgp_path_tamper_detected () =
  let m = machine () in
  let r1 = ok (Bgp_attest.init_router m ~cpu:0 ~asn:1) in
  let r2 = ok (Bgp_attest.init_router m ~cpu:0 ~asn:2) in
  let u1 = ok (Bgp_attest.originate m ~cpu:0 r1 ~prefix:"172.16.0.0/12") in
  let u2 = ok (Bgp_attest.forward m ~cpu:0 r2 u1 ~predecessor:r1.Bgp_attest.public) in
  let publics = [ (1, r1.Bgp_attest.public); (2, r2.Bgp_attest.public); (666, r2.Bgp_attest.public) ] in
  checkb "genuine chain verifies" true (Bgp_attest.verify_chain u2 ~publics);
  (* Path shortening / AS replacement breaks the hop signatures. *)
  let tampered = { u2 with Bgp_attest.as_path = [ 2; 666 ] } in
  checkb "tampered path rejected" false (Bgp_attest.verify_chain tampered ~publics);
  let stripped =
    { u2 with Bgp_attest.signatures = List.tl u2.Bgp_attest.signatures;
      as_path = List.tl u2.Bgp_attest.as_path }
  in
  checkb "stripped hop still consistent (it is u1)" true
    (Bgp_attest.verify_chain stripped ~publics)

let test_bgp_wire_roundtrip () =
  let u = { Bgp_attest.prefix = "10.1.0.0/16"; as_path = [ 3; 2; 1 ];
            signatures = [ "s3"; "s2"; "s1" ] } in
  checkb "wire roundtrip" true
    (Bgp_attest.update_of_wire (Bgp_attest.wire_of_update u) = Some u);
  checkb "junk rejected" true (Bgp_attest.update_of_wire "junk" = None)

(* --- the same applications on the proposed hardware --- *)

let proposed () =
  Machine.create (Machine.low_fidelity (Machine.proposed_variant Machine.hp_dc5750))

let test_apps_on_proposed_hw () =
  let m = proposed () in
  checkb "dispatches to SLAUNCH" true
    (Sea_core.Exec.architecture m = Sea_core.Backend.Proposed);
  (* CA *)
  let ca = ok (Cert_authority.init m ~cpu:0 ()) in
  let cert = ok (Cert_authority.sign_csr m ~cpu:0 ca ~csr:"CN=slaunch") in
  checkb "CA works under SLAUNCH" true
    (Cert_authority.verify_certificate ca ~csr:"CN=slaunch" ~signature:cert);
  (* SSH *)
  let acct = ok (Ssh_password.setup m ~cpu:1 ~user:"u" ~password:"pw") in
  checkb "SSH grant" true (ok (Ssh_password.authenticate m ~cpu:0 acct ~password:"pw"));
  checkb "SSH deny" false (ok (Ssh_password.authenticate m ~cpu:1 acct ~password:"xx"))

let test_factoring_on_proposed_hw () =
  let m = proposed () in
  let fs, sessions = ok (Factoring.run_to_completion m ~cpu:0 ~n:(101 * 103) ~range:25 ()) in
  Alcotest.(check (list int)) "factors under SLAUNCH" [ 101; 103 ] fs;
  checkb "multiple sessions" true (sessions >= 3)

let test_sealed_state_stays_architecture_bound () =
  (* State sealed under a Flicker session (PCR policy) does not unseal
     under a SLAUNCH session (sePCR binding) and vice versa — different
     protection roots. *)
  let mc = machine () in
  let acct = ok (Ssh_password.setup mc ~cpu:0 ~user:"u" ~password:"pw") in
  let mp = proposed () in
  (* Same TPM vendor family but a different machine instance anyway;
     the point stands within one machine too, but cross-machine is the
     realistic replay. *)
  expect_error (Ssh_password.authenticate mp ~cpu:0 acct ~password:"pw")

let () =
  Alcotest.run "apps"
    [
      ( "codec",
        [
          Alcotest.test_case "command roundtrip" `Quick test_codec_command_roundtrip;
          Alcotest.test_case "rsa key roundtrip" `Quick test_codec_rsa_roundtrip;
        ] );
      ( "cert-authority",
        [
          Alcotest.test_case "issue and verify" `Quick test_ca_issue_and_verify;
          Alcotest.test_case "key never leaves sealed" `Quick test_ca_key_never_leaves_sealed;
          Alcotest.test_case "distinct instances" `Quick test_ca_distinct_instances;
        ] );
      ( "ssh-password",
        [
          Alcotest.test_case "authentication flow" `Quick test_ssh_auth_flow;
          Alcotest.test_case "record opaque to OS" `Quick test_ssh_record_opaque_to_os;
          Alcotest.test_case "tampered record rejected" `Quick test_ssh_tampered_record_rejected;
        ] );
      ( "rootkit-detector",
        [
          Alcotest.test_case "clean vs infected" `Quick test_rootkit_clean_and_infected;
          Alcotest.test_case "verdict attested" `Quick test_rootkit_verdict_attested;
          Alcotest.test_case "deterministic image" `Quick test_rootkit_deterministic_image;
        ] );
      ( "factoring",
        [
          Alcotest.test_case "small composite" `Quick test_factoring_small;
          Alcotest.test_case "multi-session" `Quick test_factoring_multi_session;
          Alcotest.test_case "prime input" `Quick test_factoring_prime_input;
          Alcotest.test_case "state integrity" `Quick test_factoring_state_integrity;
          Alcotest.test_case "session budget" `Quick test_factoring_session_budget;
        ] );
      ( "bgp-attest",
        [
          Alcotest.test_case "attested chain" `Quick test_bgp_chain;
          Alcotest.test_case "forged hop refused" `Quick test_bgp_forged_hop_refused;
          Alcotest.test_case "path tamper detected" `Quick test_bgp_path_tamper_detected;
          Alcotest.test_case "wire roundtrip" `Quick test_bgp_wire_roundtrip;
        ] );
      ( "proposed-hw",
        [
          Alcotest.test_case "CA and SSH under SLAUNCH" `Quick test_apps_on_proposed_hw;
          Alcotest.test_case "factoring under SLAUNCH" `Quick test_factoring_on_proposed_hw;
          Alcotest.test_case "state architecture-bound" `Quick
            test_sealed_state_stays_architecture_bound;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "cross-app seal isolation" `Quick test_cross_app_seal_isolation;
          Alcotest.test_case "distinct app identities" `Quick test_app_measurements_distinct;
        ] );
    ]
