(* Tests for sea.vtpm: per-tenant virtual PCR isolation, the
   anchor-changes-iff-state-changes invariant, two-layer quote
   verification, batch-size-invariant serve reports, per-instance
   quarantine on anchor/checkpoint faults, and the coalesced LPC batch
   accounting the anchor pipeline is priced with. *)

open Sea_sim
open Sea_tpm
open Sea_fault
module Vtpm = Sea_vtpm.Vtpm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let mk ?(sepcr_count = 2) ?(seed = 5L) () =
  let e = Engine.create ~seed () in
  (e, Tpm.create ~key_bits:512 ~sepcr_count e)

let mux ?(instances = 3) ?batch ?retry tpm =
  match Vtpm.create ?batch ?retry ~tpm ~instances () with
  | Ok v -> v
  | Error e -> Alcotest.fail ("vtpm create: " ^ e)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let contains ~sub s =
  let n = String.length sub and len = String.length s in
  let rec go i =
    if i + n > len then false else String.sub s i n = sub || go (i + 1)
  in
  go 0

(* --- construction --- *)

let test_create_validates () =
  let _, tpm = mk () in
  let is_err = function Error _ -> true | Ok _ -> false in
  checkb "instances < 1" true (is_err (Vtpm.create ~tpm ~instances:0 ()));
  checkb "batch < 1" true (is_err (Vtpm.create ~batch:0 ~tpm ~instances:1 ()));
  checkb "anchor out of range" true
    (is_err (Vtpm.create ~anchor_pcr:24 ~tpm ~instances:1 ()));
  let v = mux ~instances:3 tpm in
  checki "instances" 3 (Vtpm.instances v);
  checki "anchor pcr" 23 (Vtpm.anchor_pcr v);
  checki "tenant routing is mod" 1
    (Vtpm.index (Vtpm.for_tenant v ~tenant:7))

(* --- virtual PCR isolation --- *)

let test_vpcr_chains_independent () =
  let _, tpm = mk () in
  let v = mux ~instances:3 tpm in
  let i0 = Vtpm.instance v 0
  and i1 = Vtpm.instance v 1
  and i2 = Vtpm.instance v 2 in
  let before2 = Vtpm.pcr_value i2 17 in
  let v0 = ok (Vtpm.extend i0 17 "tenant zero") in
  let v1 = ok (Vtpm.extend i1 17 "tenant one") in
  checkb "same index, different chains" true (v0 <> v1);
  checks "bystander untouched" before2 (Vtpm.pcr_value i2 17);
  checkb "extend landed" true (Vtpm.pcr_value i0 17 = v0);
  (* Blobs are private to the sealing instance: a neighbour's key cannot
     open them. *)
  let blob = ok (Vtpm.seal i0 ~pcr_policy:[ (17, v0) ] "secret") in
  checks "owner unseals" "secret" (ok (Vtpm.unseal i0 blob));
  checkb "neighbour cannot" true
    (match Vtpm.unseal i1 blob with Error _ -> true | Ok _ -> false);
  (* The virtual policy is checked against the virtual bank. *)
  ignore (ok (Vtpm.extend i0 17 "moved on"));
  checkb "stale virtual policy refuses" true
    (match Vtpm.unseal i0 blob with Error _ -> true | Ok _ -> false)

(* --- anchoring --- *)

let test_anchor_changes_iff_state_changes () =
  let _, tpm = mk () in
  let v = mux ~instances:2 tpm in
  let i0 = Vtpm.instance v 0 in
  Vtpm.sync v;
  let a0 = Vtpm.anchor_value v in
  (* Data-path commands are not state changes: no anchor movement. *)
  let blob = ok (Vtpm.seal i0 ~pcr_policy:[] "payload") in
  checks "round trip" "payload" (ok (Vtpm.unseal i0 blob));
  ignore (Vtpm.get_random i0 16);
  Vtpm.sync v;
  checks "anchor still" a0 (Vtpm.anchor_value v);
  (* Any state change moves it. *)
  ignore (ok (Vtpm.extend i0 18 "state"));
  Vtpm.sync v;
  checkb "anchor moved" true (Vtpm.anchor_value v <> a0);
  let a1 = Vtpm.anchor_value v in
  Vtpm.launch_measured (Vtpm.instance v 1) ~pcr:17
    ~measurement:(String.make 20 'm');
  Vtpm.sync v;
  checkb "neighbour launch moves anchor too" true (Vtpm.anchor_value v <> a1)

let test_quote_verifies_and_tamper_fails () =
  let _, tpm = mk () in
  let v = mux ~instances:2 tpm in
  let i0 = Vtpm.instance v 0 in
  ignore (ok (Vtpm.extend i0 17 "identity"));
  let aik = Tpm.aik_public tpm and key = Vtpm.key_public i0 in
  let q = ok (Vtpm.quote i0 ~selection:[ 17 ] ~nonce:"n-1") in
  checkb "good quote verifies" true (Vtpm.verify_quote ~aik ~key q);
  checkb "wrong software key" false
    (Vtpm.verify_quote ~aik ~key:(Vtpm.key_public (Vtpm.instance v 1)) q);
  checkb "tampered nonce" false
    (Vtpm.verify_quote ~aik ~key { q with Vtpm.nonce = "evil" });
  checkb "tampered virtual selection" false
    (Vtpm.verify_quote ~aik ~key
       { q with Vtpm.selection = [ (17, String.make 20 'x') ] });
  (* Tampering with the hardware layer: a corrupted anchor signature
     fails the AIK check, and splicing an older (differently valued)
     anchor quote under the software signature fails the binding. *)
  let flip s =
    let b = Bytes.of_string s in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
    Bytes.to_string b
  in
  let bad_anchor =
    { q.Vtpm.anchor with Tpm.signature = flip q.Vtpm.anchor.Tpm.signature }
  in
  checkb "tampered anchor signature" false
    (Vtpm.verify_quote ~aik ~key { q with Vtpm.anchor = bad_anchor });
  ignore (ok (Vtpm.extend i0 17 "more state"));
  let q2 = ok (Vtpm.quote i0 ~selection:[ 17 ] ~nonce:"n-1") in
  checkb "fresh quote verifies" true (Vtpm.verify_quote ~aik ~key q2);
  checkb "anchor values differ across state changes" true
    (q.Vtpm.anchor.Tpm.selection <> q2.Vtpm.anchor.Tpm.selection);
  checkb "replayed old anchor quote" false
    (Vtpm.verify_quote ~aik ~key { q2 with Vtpm.anchor = q.Vtpm.anchor })

(* --- quarantine --- *)

let test_checkpoint_failure_quarantines_only_affected () =
  let _, tpm = mk () in
  let v = mux ~instances:3 tpm in
  let i0 = Vtpm.instance v 0 and i1 = Vtpm.instance v 1 in
  let plan = Fault.of_spec (Fault.spec ~kinds:[ Fault.Seal_fail ] ~rate:1. ()) in
  Tpm.set_faults tpm (Some plan);
  checkb "checkpoint fails under seal faults" true
    (match Vtpm.checkpoint i0 with Error _ -> true | Ok _ -> false);
  checkb "affected instance quarantined" true (Vtpm.broken i0);
  checkb "neighbour untouched" false (Vtpm.broken i1);
  checkb "neighbour keeps serving" true
    (match Vtpm.extend i1 17 "still here" with Ok _ -> true | Error _ -> false);
  checkb "quarantined refuses work" true
    (match Vtpm.extend i0 17 "no" with Error _ -> true | Ok _ -> false);
  (* Healing while the seal fault persists fails and stays quarantined;
     once the fault clears, heal re-provisions and counts a reset. *)
  checkb "heal under persistent fault fails" true
    (match Vtpm.heal i0 with Error _ -> true | Ok _ -> false);
  checkb "still quarantined" true (Vtpm.broken i0);
  Tpm.set_faults tpm None;
  (match Vtpm.heal i0 with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("heal: " ^ e));
  checkb "healed" false (Vtpm.broken i0);
  checkb "healed instance serves" true
    (match Vtpm.extend i0 17 "back" with Ok _ -> true | Error _ -> false);
  checki "one reset counted" 1 (Vtpm.counters v).Vtpm.resets

let test_anchor_retry_exhaustion_quarantines_batch () =
  let _, tpm = mk () in
  let retry = Retry.policy ~max_attempts:2 () in
  let v = mux ~instances:2 ~batch:1 ~retry tpm in
  let i0 = Vtpm.instance v 0 and i1 = Vtpm.instance v 1 in
  let plan = Fault.of_spec (Fault.spec ~kinds:[ Fault.Tpm_busy ] ~rate:1. ()) in
  Tpm.set_faults tpm (Some plan);
  (* batch = 1: the extend's own record flushes immediately, the anchor
     leg burns its bounded attempts on busy faults and gives up. *)
  ignore (Vtpm.extend i0 17 "doomed");
  checkb "batch member quarantined" true (Vtpm.broken i0);
  checkb "instance with no record in the batch untouched" false
    (Vtpm.broken i1);
  checki "both attempts burned" 2 (Vtpm.anchor_retries v);
  Tpm.set_faults tpm None

(* --- accounting: the coalesced LPC burst (satellite of this PR) --- *)

let test_lpc_batch_charges_per_byte_moved () =
  let e = Engine.create ~seed:2L () in
  let lpc = Sea_bus.Lpc.create e in
  let wait = Time.us 10. in
  let txn = Sea_bus.Lpc.transaction_time lpc ~device_wait:wait in
  (* Three 5-byte commands at 4 data bytes per transaction: framed
     per-command they pay ceil(5/4) = 2 transactions each; coalesced
     they pay ceil(15/4) = 4 — per byte actually moved. *)
  let per_command =
    List.fold_left
      (fun acc bytes ->
        Time.add acc (Sea_bus.Lpc.transfer_time lpc ~device_wait:wait ~bytes))
      Time.zero [ 5; 5; 5 ]
  in
  let batched =
    Sea_bus.Lpc.batch_transfer_time lpc ~device_wait:wait ~chunks:[ 5; 5; 5 ]
  in
  checki "per-command framing: 6 transactions" (6 * Time.to_ns txn)
    (Time.to_ns per_command);
  checki "coalesced burst: 4 transactions" (4 * Time.to_ns txn)
    (Time.to_ns batched);
  checkb "batching never costs more" true (Time.compare batched per_command <= 0);
  checki "aligned chunks coalesce for free"
    (Time.to_ns (Sea_bus.Lpc.transfer_time lpc ~device_wait:wait ~bytes:16))
    (Time.to_ns
       (Sea_bus.Lpc.batch_transfer_time lpc ~device_wait:wait
          ~chunks:[ 4; 4; 4; 4 ]))

let test_anchor_batch_time_pinned () =
  let _, tpm = mk () in
  let v = mux ~instances:1 ~batch:2 tpm in
  let i0 = Vtpm.instance v 0 in
  let t0 = Vtpm.anchor_time v in
  let f0 = Vtpm.flushes v in
  ignore (ok (Vtpm.extend i0 17 "one"));
  checki "first record pends" f0 (Vtpm.flushes v);
  ignore (ok (Vtpm.extend i0 17 "two"));
  checki "second record flushes" (f0 + 1) (Vtpm.flushes v);
  (* Regression pin: one batch of two 32-byte anchor records costs one
     coalesced LPC burst plus one (unjittered) PCR-extend latency — not
     two separately framed transfers. *)
  let profile = Tpm.profile tpm in
  let expected =
    Time.add
      (Sea_bus.Lpc.batch_transfer_time (Tpm.lpc tpm)
         ~device_wait:profile.Timing.hash_data_wait ~chunks:[ 32; 32 ])
      profile.Timing.pcr_extend
  in
  checki "per-batch virtual time" (Time.to_ns expected)
    (Time.to_ns (Time.sub (Vtpm.anchor_time v) t0));
  Vtpm.sync v;
  checki "sync drains the lag" 0 (Time.to_ns (Vtpm.anchor_lag v))

(* --- serving: batch size and shard count must not show in reports --- *)

let serve_report ~vtpm_batch =
  let config = Sea_hw.Machine.low_fidelity Sea_hw.Machine.hp_dc5750 in
  let m =
    Sea_hw.Machine.create ~engine:(Engine.create ~seed:11L ()) config
  in
  let cfg =
    Sea_serve.Server.config ~queue_depth:8 ~vtpm:4 ~vtpm_batch
      ~mode:Sea_serve.Server.Current ~duration:(Time.s 2.) ()
  in
  match
    Sea_serve.Server.run m cfg
      (Sea_serve.Workload.preset ~tenants:6 (`Open 20.))
  with
  | Ok r -> Sea_serve.Report.render r
  | Error e -> Alcotest.fail ("serve: " ^ e)

let test_batch_size_invisible_in_reports () =
  let r1 = serve_report ~vtpm_batch:1 in
  let rn = serve_report ~vtpm_batch:16 in
  checks "batch 1 vs 16 byte-identical" r1 rn;
  checkb "vtpm line present" true
    (contains ~sub:"vtpm: 4 instances" r1)

let cluster_report ~shards =
  let machine_config =
    Sea_hw.Machine.low_fidelity Sea_hw.Machine.hp_dc5750
  in
  let cfg = Sea_cluster.Cluster.config ~shards ~machines:4 () in
  let serve =
    Sea_serve.Server.config ~queue_depth:8 ~vtpm:2
      ~mode:Sea_serve.Server.Current ~duration:(Time.s 2.) ()
  in
  match
    Sea_cluster.Cluster.run ~seed:9L cfg ~machine_config ~serve
      (Sea_serve.Workload.preset ~tenants:8 (`Open 24.))
  with
  | Ok r -> Sea_cluster.Fleet_report.render r
  | Error e -> Alcotest.fail ("cluster: " ^ e)

let test_shard_count_invisible_in_fleet_reports () =
  let s1 = cluster_report ~shards:1 in
  let s4 = cluster_report ~shards:4 in
  checks "shards 1 vs 4 byte-identical" s1 s4;
  checkb "fleet vtpm line sums instances" true
    (contains ~sub:"vtpm: 8 instances" s1)

let () =
  Alcotest.run "vtpm"
    [
      ( "construction",
        [
          Alcotest.test_case "create validates" `Quick test_create_validates;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "vPCR chains independent" `Quick
            test_vpcr_chains_independent;
        ] );
      ( "anchoring",
        [
          Alcotest.test_case "anchor changes iff state changes" `Quick
            test_anchor_changes_iff_state_changes;
          Alcotest.test_case "quote verifies, tamper fails" `Quick
            test_quote_verifies_and_tamper_fails;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "checkpoint failure is per-instance" `Quick
            test_checkpoint_failure_quarantines_only_affected;
          Alcotest.test_case "anchor retry exhaustion" `Quick
            test_anchor_retry_exhaustion_quarantines_batch;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "lpc batch charges per byte" `Quick
            test_lpc_batch_charges_per_byte_moved;
          Alcotest.test_case "anchor batch time pinned" `Quick
            test_anchor_batch_time_pinned;
        ] );
      ( "serving",
        [
          Alcotest.test_case "batch size invisible in reports" `Quick
            test_batch_size_invisible_in_reports;
          Alcotest.test_case "shard count invisible in fleet reports" `Quick
            test_shard_count_invisible_in_fleet_reports;
        ] );
    ]
