(* Tests for the fault-injection subsystem: deterministic fault plans,
   bounded retry with virtual-time backoff, the serving loop's circuit
   breakers, resident-PAL recovery, and fault-schedule determinism
   (replayed across every seed in SEA_FAULT_SEEDS). *)

open Sea_sim
open Sea_fault
open Sea_serve

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- fault plans --- *)

let test_spec_validation () =
  Alcotest.check_raises "rate > 1"
    (Invalid_argument "Fault.create: rate must be in [0, 1]") (fun () ->
      ignore (Fault.spec ~rate:1.5 ()));
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Fault.create: rate must be in [0, 1]") (fun () ->
      ignore (Fault.spec ~rate:(-0.1) ()));
  Alcotest.check_raises "empty kinds"
    (Invalid_argument "Fault.create: kinds must be non-empty") (fun () ->
      ignore (Fault.spec ~kinds:[] ~rate:0.5 ()))

let test_kind_names_round_trip () =
  List.iter
    (fun k ->
      checkb (Fault.kind_name k) true
        (Fault.kind_of_name (Fault.kind_name k) = Some k))
    Fault.all_kinds;
  checkb "unknown name" true (Fault.kind_of_name "warp-core-breach" = None)

let test_transient_tagging () =
  let e = Fault.transient "TPM busy" in
  checkb "tagged transient" true (Fault.is_transient e);
  checkb "prefix carried" true (e = Fault.transient_prefix ^ ": TPM busy");
  checkb "plain errors are permanent" true
    (not (Fault.is_transient "bad measurement"))

let test_fires_rate_extremes () =
  let plan0 = Fault.of_spec (Fault.spec ~rate:0. ()) in
  for _ = 1 to 100 do
    checkb "rate 0 never fires" false (Fault.fires plan0 Fault.Tpm_busy)
  done;
  checki "rate 0 injects nothing" 0 (Fault.total plan0);
  let plan1 = Fault.of_spec (Fault.spec ~rate:1. ()) in
  for _ = 1 to 10 do
    checkb "rate 1 always fires" true (Fault.fires plan1 Fault.Tpm_busy)
  done;
  checki "every fire counted" 10 (Fault.injected plan1 Fault.Tpm_busy);
  checki "total tracks" 10 (Fault.total plan1)

let test_disabled_kind_never_fires () =
  let plan =
    Fault.of_spec (Fault.spec ~kinds:[ Fault.Seal_fail ] ~rate:1. ())
  in
  checkb "disabled kind" false (Fault.fires plan Fault.Tpm_busy);
  checkb "enabled kind" true (Fault.fires plan Fault.Seal_fail)

let test_max_injections_caps () =
  let rng = Rng.create ~seed:3L () in
  let plan = Fault.create ~max_injections:2 ~rate:1. rng in
  checkb "1st" true (Fault.fires plan Fault.Tpm_busy);
  checkb "2nd" true (Fault.fires plan Fault.Tpm_busy);
  checkb "capped" false (Fault.fires plan Fault.Tpm_busy);
  checki "exactly the cap" 2 (Fault.total plan)

let test_plan_determinism () =
  let draw seed =
    let plan = Fault.of_spec (Fault.spec ~seed ~rate:0.3 ()) in
    List.init 200 (fun _ -> Fault.fires plan Fault.Lpc_stall)
  in
  checkb "same seed, same schedule" true (draw 7 = draw 7);
  checkb "different seed, different schedule" true (draw 7 <> draw 8)

let test_stall_accumulates () =
  let plan = Fault.of_spec (Fault.spec ~rate:1. ()) in
  let base = Time.us 13. in
  let d1 = Fault.stall plan ~base in
  let d2 = Fault.stall plan ~base in
  checkb "stall is positive" true (Time.compare d1 Time.zero > 0);
  checkb "stall accumulated" true
    (Fault.stall_injected plan = Time.add d1 d2)

(* --- retry --- *)

let engine () = Engine.create ~seed:5L ()

let test_retry_policy_validation () =
  Alcotest.check_raises "zero attempts"
    (Invalid_argument "Retry.policy: max_attempts must be >= 1")
    (fun () -> ignore (Retry.policy ~max_attempts:0 ()))

let test_retry_transient_then_success () =
  let e = engine () in
  let policy = Retry.policy () in
  let calls = ref 0 in
  let t0 = Engine.now e in
  let r =
    Retry.run ~policy ~engine:e (fun () ->
        incr calls;
        if !calls < 3 then Error (Fault.transient "busy") else Ok "done")
  in
  checkb "succeeded" true (r = Ok "done");
  checki "third attempt won" 3 !calls;
  checki "two retries counted" 2 (Retry.retries policy);
  checki "no give-up" 0 (Retry.give_ups policy);
  checkb "backoff advanced virtual time" true
    (Time.compare (Engine.now e) t0 > 0)

let test_retry_permanent_not_retried () =
  let e = engine () in
  let policy = Retry.policy () in
  let calls = ref 0 in
  let r =
    Retry.run ~policy ~engine:e (fun () ->
        incr calls;
        Error "bad measurement")
  in
  checkb "error returned unchanged" true (r = Error "bad measurement");
  checki "exactly one attempt" 1 !calls;
  checki "no retries" 0 (Retry.retries policy)

let test_retry_exhaustion () =
  let e = engine () in
  let policy = Retry.policy ~max_attempts:4 () in
  let calls = ref 0 in
  let r =
    Retry.run ~policy ~engine:e (fun () ->
        incr calls;
        Error (Fault.transient "busy"))
  in
  checkb "still transient after exhaustion" true
    (match r with Error m -> Fault.is_transient m | Ok _ -> false);
  checki "all attempts spent" 4 !calls;
  checki "retries counted" 3 (Retry.retries policy);
  checki "gave up once" 1 (Retry.give_ups policy)

let test_retry_budget_stops_early () =
  let e = engine () in
  (* A budget smaller than the first backoff: no retry fits. *)
  let policy = Retry.policy ~budget:(Time.us 1.) () in
  let calls = ref 0 in
  let r =
    Retry.run ~policy ~engine:e (fun () ->
        incr calls;
        Error (Fault.transient "busy"))
  in
  checkb "failed" true (Result.is_error r);
  checki "one attempt, no budget for more" 1 !calls;
  checki "budget exhaustion is a give-up" 1 (Retry.give_ups policy)

let test_default_policies_are_independent () =
  (* Regression: [default] used to be one shared module-level value, so
     its mutable retries/give_ups counters aliased across every caller —
     retries performed through one "default" policy showed up in
     another's statistics. *)
  let e = engine () in
  let p1 = Retry.default () and p2 = Retry.default () in
  let calls = ref 0 in
  ignore
    (Retry.run ~policy:p1 ~engine:e (fun () ->
         incr calls;
         if !calls < 3 then Error (Fault.transient "busy") else Ok ()));
  checki "p1 counted its retries" 2 (Retry.retries p1);
  checki "p2 unaffected" 0 (Retry.retries p2);
  checki "a third default starts clean" 0 (Retry.retries (Retry.default ()))

let test_retry_without_policy_runs_once () =
  let e = engine () in
  let calls = ref 0 in
  let r =
    Retry.run ~engine:e (fun () ->
        incr calls;
        Error (Fault.transient "busy"))
  in
  checkb "no policy, no retry" true (Result.is_error r);
  checki "single attempt" 1 !calls

(* --- circuit breaker --- *)

let bcfg = Breaker.config ~failure_threshold:3 ~cooldown:(Time.ms 100.) ()

let test_breaker_opens_at_threshold () =
  let b = Breaker.create bcfg in
  let now = Time.zero in
  checkb "starts closed" true (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b ~now;
  Breaker.record_failure b ~now;
  checkb "still closed below threshold" true
    (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b ~now;
  checkb "open at threshold" true (Breaker.state b = Breaker.Open);
  checkb "rejects while open" false (Breaker.allow b ~now);
  checki "rejection counted" 1 (Breaker.rejected b);
  checkb "retry_at is cooldown away" true
    (Breaker.retry_at b = Time.add now (Time.ms 100.))

let test_breaker_probe_success_closes () =
  let b = Breaker.create bcfg in
  for _ = 1 to 3 do
    Breaker.record_failure b ~now:Time.zero
  done;
  let later = Time.ms 150. in
  checkb "probe admitted" true (Breaker.allow b ~now:later);
  checkb "half-open during probe" true (Breaker.state b = Breaker.Half_open);
  checkb "probe budget spent" false (Breaker.allow b ~now:later);
  Breaker.record_success b ~now:later;
  checkb "success closes" true (Breaker.state b = Breaker.Closed);
  checkb "admits again" true (Breaker.allow b ~now:later);
  checki "closed -> open -> half-open -> closed" 3 (Breaker.transitions b);
  checkb "degraded time covers the open interval" true
    (Time.compare (Breaker.degraded b ~now:later) Time.zero > 0)

let test_breaker_probe_failure_reopens () =
  let b = Breaker.create bcfg in
  for _ = 1 to 3 do
    Breaker.record_failure b ~now:Time.zero
  done;
  let later = Time.ms 150. in
  checkb "probe admitted" true (Breaker.allow b ~now:later);
  Breaker.record_failure b ~now:later;
  checkb "probe failure reopens" true (Breaker.state b = Breaker.Open);
  checkb "fresh cooldown from the probe" true
    (Breaker.retry_at b = Time.add later (Time.ms 100.));
  checkb "rejects again" false (Breaker.allow b ~now:later)

(* --- serving under injected faults --- *)

let machine ?(seed = 11L) proposed =
  let config = Sea_hw.Machine.low_fidelity Sea_hw.Machine.hp_dc5750 in
  let config =
    if proposed then Sea_hw.Machine.proposed_variant config else config
  in
  Sea_hw.Machine.create ~engine:(Engine.create ~seed ()) config

let serve ?seed ?faults ?(depth = 16) ~mode ~duration tenants =
  let proposed_hw =
    match mode with
    | Server.Proposed -> true
    | Server.Current | Server.Sfi -> false
  in
  let m = machine ?seed proposed_hw in
  let cfg = Server.config ~queue_depth:depth ?faults ~mode ~duration () in
  match Server.run m cfg tenants with
  | Ok r -> r
  | Error e -> Alcotest.fail ("serve: " ^ e)

let row_consistent (r : Report.t) =
  List.for_all
    (fun (row : Report.row) ->
      row.Report.offered
      = row.Report.completed + row.Report.shed + row.Report.timed_out
        + row.Report.failed)
    (r.Report.aggregate :: r.Report.rows)

let test_faulty_run_invariant_holds () =
  let r =
    serve ~mode:Server.Proposed ~duration:(Time.s 2.)
      ~faults:(Fault.spec ~seed:7 ~rate:0.1 ())
      (Workload.preset ~tenants:3 (`Open 12.))
  in
  checkb "rows consistent under faults" true (row_consistent r);
  checkb "robustness machinery engaged" true (Report.robustness_active r);
  checkb "still completing work" true
    (r.Report.aggregate.Report.completed > 0)

let test_breaker_sheds_persistent_failures () =
  (* Every kv-update request seals; with seal writes failing at rate 1
     the retries exhaust on each dispatch, so after the failure
     threshold the tenant's breaker must shed instead of burning core
     time on doomed sessions. *)
  let tenants =
    [
      Workload.tenant ~name:"kv"
        ~mix:[ (Workload.Kv_update, 1) ]
        (Workload.Open_loop { rate_per_s = 4. });
    ]
  in
  let r =
    serve ~mode:Server.Current ~duration:(Time.s 4.)
      ~faults:(Fault.spec ~kinds:[ Fault.Seal_fail ] ~rate:1. ())
      tenants
  in
  checkb "failures recorded" true (r.Report.aggregate.Report.failed > 0);
  checkb "breaker shed arrivals" true (r.Report.breaker_shed > 0);
  checkb "breaker cycled" true (r.Report.breaker_transitions > 0);
  checkb "degraded time recorded" true
    (Time.compare r.Report.degraded Time.zero > 0);
  checkb "failures bounded by the breaker" true
    (r.Report.aggregate.Report.failed
    < r.Report.aggregate.Report.failed + r.Report.breaker_shed);
  checkb "rows consistent" true (row_consistent r)

let test_resident_recovery () =
  (* TPM-busy faults at rate 1 break every resume (sePCR_Rebind stays
     busy past the retry budget) while cold starts survive; each warm
     request must quarantine the resident and recover via a fresh
     launch instead of failing. *)
  let tenants =
    [
      Workload.tenant ~name:"t"
        ~mix:[ (Workload.Ssh_auth, 1) ]
        (Workload.Open_loop { rate_per_s = 8. });
    ]
  in
  let r =
    serve ~mode:Server.Proposed ~duration:(Time.s 1.)
      ~faults:(Fault.spec ~kinds:[ Fault.Tpm_busy ] ~rate:1. ())
      tenants
  in
  checkb "recoveries happened" true (r.Report.recoveries > 0);
  checkb "recovered requests completed" true
    (r.Report.aggregate.Report.completed > 0);
  checkb "rows consistent" true (row_consistent r)

let test_rate_zero_spec_is_invisible () =
  (* A rate-0 plan must not perturb the run at all: same render as no
     plan, and no robustness lines. *)
  let go faults =
    serve ~seed:9L ~mode:Server.Proposed ~duration:(Time.s 1.) ?faults
      (Workload.preset ~tenants:3 (`Open 12.))
  in
  let bare = go None in
  let zero = go (Some (Fault.spec ~rate:0. ())) in
  checkb "no robustness lines" true (not (Report.robustness_active zero));
  Alcotest.(check string)
    "rate-0 plan renders identically to no plan" (Report.render bare)
    (Report.render zero)

let fault_seeds () =
  match Sys.getenv_opt "SEA_FAULT_SEEDS" with
  | None | Some "" -> [ 1; 2; 3 ]
  | Some s ->
      String.split_on_char ' ' s
      |> List.concat_map (String.split_on_char ',')
      |> List.filter_map (fun tok -> int_of_string_opt (String.trim tok))

let test_fault_seed_determinism () =
  (* The soak axis for CI: for every seed in SEA_FAULT_SEEDS, a faulty
     run must replay bit-identically and keep the accounting invariant. *)
  List.iter
    (fun seed ->
      let go () =
        serve ~seed:13L ~mode:Server.Proposed ~duration:(Time.s 1.)
          ~faults:(Fault.spec ~seed ~rate:0.05 ())
          (Workload.preset ~tenants:3 (`Open 12.))
      in
      let r1 = go () and r2 = go () in
      checkb (Printf.sprintf "seed %d rows consistent" seed) true
        (row_consistent r1);
      Alcotest.(check string)
        (Printf.sprintf "seed %d replays bit-identically" seed)
        (Report.render r1) (Report.render r2))
    (fault_seeds ())

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
          Alcotest.test_case "kind names round-trip" `Quick
            test_kind_names_round_trip;
          Alcotest.test_case "transient tagging" `Quick test_transient_tagging;
          Alcotest.test_case "rate extremes" `Quick test_fires_rate_extremes;
          Alcotest.test_case "disabled kinds" `Quick
            test_disabled_kind_never_fires;
          Alcotest.test_case "max injections cap" `Quick
            test_max_injections_caps;
          Alcotest.test_case "plan determinism" `Quick test_plan_determinism;
          Alcotest.test_case "stall accumulates" `Quick test_stall_accumulates;
        ] );
      ( "retry",
        [
          Alcotest.test_case "policy validation" `Quick
            test_retry_policy_validation;
          Alcotest.test_case "transient then success" `Quick
            test_retry_transient_then_success;
          Alcotest.test_case "permanent not retried" `Quick
            test_retry_permanent_not_retried;
          Alcotest.test_case "exhaustion" `Quick test_retry_exhaustion;
          Alcotest.test_case "budget stops early" `Quick
            test_retry_budget_stops_early;
          Alcotest.test_case "no policy runs once" `Quick
            test_retry_without_policy_runs_once;
          Alcotest.test_case "default policies independent" `Quick
            test_default_policies_are_independent;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens at threshold" `Quick
            test_breaker_opens_at_threshold;
          Alcotest.test_case "probe success closes" `Quick
            test_breaker_probe_success_closes;
          Alcotest.test_case "probe failure reopens" `Quick
            test_breaker_probe_failure_reopens;
        ] );
      ( "serving",
        [
          Alcotest.test_case "invariant under faults" `Quick
            test_faulty_run_invariant_holds;
          Alcotest.test_case "breaker sheds persistent failures" `Quick
            test_breaker_sheds_persistent_failures;
          Alcotest.test_case "resident recovery" `Quick test_resident_recovery;
          Alcotest.test_case "rate-0 plan invisible" `Quick
            test_rate_zero_spec_is_invisible;
          Alcotest.test_case "fault-seed determinism" `Quick
            test_fault_seed_determinism;
        ] );
    ]
