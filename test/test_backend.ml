(* Backend-interface tests: CLI mode parsing, the three backend values,
   the Exec one-shot driver honouring preemption (the "unsliced session
   unexpectedly yielded" regression), SFI sessions (lifecycle, identity-
   bound sealed storage across sessions, boot-chain quotes, allocation
   balance with an unbounded resident pool), and SFI-mode serving
   (no sePCR scarcity: zero evictions, zero waits). *)

open Sea_sim
open Sea_hw
open Sea_core

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let ok = function Ok x -> x | Error e -> Alcotest.fail e
let expect_error = function Error _ -> () | Ok _ -> Alcotest.fail "expected error"

let dc5750 ?(seed = 3L) () =
  Machine.create
    ~engine:(Engine.create ~seed ())
    (Machine.low_fidelity Machine.hp_dc5750)

let proposed ?(seed = 3L) () =
  Machine.create
    ~engine:(Engine.create ~seed ())
    (Machine.low_fidelity (Machine.proposed_variant Machine.hp_dc5750))

let tyan () = Machine.create Machine.tyan_n3600r

let worker ?(name = "worker") ?(compute = Time.ms 20.) () =
  Pal.create ~name ~code_size:8192 ~compute_time:compute (fun services _ ->
      services.Pal.seal "worker state")

(* --- mode names --- *)

let test_mode_names () =
  checkb "three modes" true
    (List.map Backend.cli_name Backend.all = [ "current"; "proposed"; "sfi" ]);
  List.iter
    (fun kind ->
      checkb (Backend.cli_name kind) true
        (Backend.of_cli_name (Backend.cli_name kind) = Some kind))
    Backend.all;
  checkb "case-insensitive" true (Backend.of_cli_name "SFI" = Some Backend.Sfi);
  checkb "trimmed" true
    (Backend.of_cli_name " proposed " = Some Backend.Proposed);
  checkb "unknown is None" true (Backend.of_cli_name "bogus" = None);
  (* The serve layer re-exports the same constructors and spellings. *)
  checkb "server re-export" true
    (Sea_serve.Server.mode_of_name "sfi" = Some Sea_serve.Server.Sfi);
  checkb "server mode list" true
    (Sea_serve.Server.mode_names = [ "current"; "proposed"; "sfi" ])

let test_backend_of_kind () =
  List.iter
    (fun kind -> checkb "of_kind roundtrip" true ((Backend.of_kind kind).Backend.kind = kind))
    Backend.all;
  checkb "current is not resident" false Backend.current.Backend.resident;
  checkb "proposed is resident" true Backend.proposed.Backend.resident;
  checkb "sfi is resident" true Backend.sfi.Backend.resident;
  (* Hardware backends charge nothing themselves: their costs come out of
     the simulated TPM/bus/instruction timings. *)
  List.iter
    (fun op ->
      checkb "hw extra_cost zero" true
        (Time.compare (Backend.current.Backend.extra_cost op) Time.zero = 0
        && Time.compare (Backend.proposed.Backend.extra_cost op) Time.zero = 0))
    [ Backend.Op_launch; Backend.Op_resume; Backend.Op_yield;
      Backend.Op_release; Backend.Op_quote; Backend.Op_seal; Backend.Op_unseal ];
  checkb "sfi transitions cost time" true
    (Time.compare (Backend.sfi.Backend.extra_cost Backend.Op_resume) Time.zero > 0);
  checkb "sfi pool unbounded" true
    (Backend.sfi.Backend.pool (dc5750 ()) = max_int);
  checkb "current hosts no residents" true
    (Backend.current.Backend.pool (dc5750 ()) = 0)

(* --- Exec one-shot driver --- *)

let test_exec_architecture () =
  checkb "plain machine is current" true
    (Exec.architecture (dc5750 ()) = Backend.Current);
  checkb "proposed variant is proposed" true
    (Exec.architecture (proposed ()) = Backend.Proposed)

let test_exec_preemption_regression () =
  (* Regression: a preemption timer shorter than the PAL's compute used
     to make Exec.run fail with "unsliced session unexpectedly yielded".
     The driver must keep resuming until the PAL finishes. *)
  let m = proposed () in
  let out =
    ok
      (Exec.run m ~cpu:0 ~preemption_timer:(Time.ms 5.)
         (worker ~compute:(Time.ms 18.) ())
         ~input:"")
  in
  checkb "yielding one-shot completes" true (String.length out > 0)

let test_exec_explicit_backend () =
  (* An explicit backend overrides the machine-derived default: SFI runs
     on a plain machine, preemption timer and all. *)
  let m = dc5750 () in
  let out =
    ok
      (Exec.run ~backend:Backend.sfi m ~cpu:0 ~preemption_timer:(Time.ms 5.)
         (worker ~compute:(Time.ms 18.) ())
         ~input:"")
  in
  checkb "sfi one-shot completes" true (String.length out > 0);
  checki "pages returned" 0 (Hashtbl.length m.Machine.allocated)

(* --- Sfi_session --- *)

let test_sfi_lifecycle () =
  let m = dc5750 () in
  let s = ok (Sfi_session.start m ~cpu:0 (worker ()) ~input:"") in
  checkb "executing" true (Sfi_session.state s = Lifecycle.Execute);
  checkb "chain rooted at loader measurement" true
    (Sfi_session.chain s = Sfi_session.expected_chain (worker ()));
  (match ok (Sfi_session.run_slice s ~cpu:0 ()) with
  | `Finished -> ()
  | `Yielded -> Alcotest.fail "should finish in one unbounded slice");
  checkb "done" true (Sfi_session.state s = Lifecycle.Done);
  checkb "output available" true (Sfi_session.output s <> None);
  Sfi_session.release s;
  checki "pages returned" 0 (Hashtbl.length m.Machine.allocated)

let test_sfi_preemption () =
  let m = dc5750 () in
  let s =
    ok
      (Sfi_session.start m ~cpu:0 ~preemption_timer:(Time.ms 5.)
         (worker ~compute:(Time.ms 18.) ())
         ~input:"")
  in
  let yields = ref 0 in
  let rec drive cpu =
    match ok (Sfi_session.run_slice s ~cpu ()) with
    | `Finished -> ()
    | `Yielded ->
        incr yields;
        checkb "suspended" true (Sfi_session.state s = Lifecycle.Suspend);
        let next = 1 - cpu in
        ok (Sfi_session.resume s ~cpu:next);
        drive next
  in
  drive 0;
  checki "18 ms / 5 ms slices = 3 yields" 3 !yields;
  Sfi_session.release s

let test_sfi_runs_without_tpm () =
  (* The launch/yield/resume path never touches late-launch hardware or
     the TPM, so SFI runs on the TPM-less Tyan — but a quote must fail:
     there is no boot-chain root to quote. *)
  let m = tyan () in
  let s = ok (Sfi_session.start m ~cpu:0 (worker ()) ~input:"") in
  ignore (ok (Sfi_session.run_slice s ~cpu:0 ()));
  expect_error (Sfi_session.quote s ~nonce:"n");
  Sfi_session.release s

let test_sfi_quote_after_done () =
  let m = dc5750 () in
  let s = ok (Sfi_session.start m ~cpu:0 (worker ()) ~input:"") in
  expect_error (Sfi_session.quote s ~nonce:"n");
  ignore (ok (Sfi_session.run_slice s ~cpu:0 ()));
  let q, t = ok (Sfi_session.quote s ~nonce:"n") in
  ignore q;
  checkb "quote costs virtual time" true (Time.compare t Time.zero > 0);
  Sfi_session.release s

let keeper round =
  Pal.create ~name:"sfi-keeper" ~code_size:8192 (fun services input ->
      if round = 0 then services.Pal.seal "round-zero-state"
      else
        match services.Pal.unseal input with
        | Ok state -> Ok ("recovered:" ^ state)
        | Error e -> Error e)

let test_sfi_sealed_state_across_sessions () =
  (* The binding is the loader-rooted identity, not the session: a blob
     sealed by one SFI session unseals in a later session of the same
     code on the same machine. *)
  let m = dc5750 () in
  let s0 = ok (Sfi_session.start m ~cpu:0 (keeper 0) ~input:"") in
  ignore (ok (Sfi_session.run_slice s0 ~cpu:0 ()));
  let blob = Option.get (Sfi_session.output s0) in
  Sfi_session.release s0;
  let s1 = ok (Sfi_session.start m ~cpu:1 (keeper 1) ~input:blob) in
  ignore (ok (Sfi_session.run_slice s1 ~cpu:1 ()));
  checkb "state recovered" true
    (Sfi_session.output s1 = Some "recovered:round-zero-state");
  Sfi_session.release s1

let test_sfi_seal_binds_identity () =
  (* A different code identity must not unseal the blob. *)
  let m = dc5750 () in
  let s0 = ok (Sfi_session.start m ~cpu:0 (keeper 0) ~input:"") in
  ignore (ok (Sfi_session.run_slice s0 ~cpu:0 ()));
  let blob = Option.get (Sfi_session.output s0) in
  Sfi_session.release s0;
  let thief =
    Pal.create ~name:"sfi-thief" ~code_size:8192 (fun services input ->
        services.Pal.unseal input)
  in
  let s1 = ok (Sfi_session.start m ~cpu:0 thief ~input:blob) in
  (match Sfi_session.run_slice s1 ~cpu:0 () with
  | Error e ->
      checkb "binding mismatch reported" true
        (String.length e > 0
        && Sfi_session.output s1 = None)
  | Ok _ -> Alcotest.fail "wrong identity unsealed the blob");
  Sfi_session.release s1

let test_sfi_many_residents_balance () =
  (* No sePCR bank: any number of SFI PALs stay resident at once, and
     every launch's pages come back on release. *)
  let m = dc5750 () in
  let residents =
    List.init 10 (fun i ->
        ok
          (Backend.sfi.Backend.launch m ~cpu:0
             ~preemption_timer:(Time.ms 5.)
             (worker ~name:(Printf.sprintf "resident-%d" i) ())
             ~input:""))
  in
  checkb "all simultaneously allocated" true
    (Hashtbl.length m.Machine.allocated > 0);
  List.iter
    (fun (inst : Backend.instance) ->
      let rec drive () =
        match ok (inst.Backend.run_slice ~cpu:0 ()) with
        | `Finished -> ()
        | `Yielded ->
            ok (inst.Backend.resume ~cpu:0);
            drive ()
      in
      drive ();
      checkb "output present" true (inst.Backend.output () <> None);
      inst.Backend.release ())
    residents;
  checki "allocation balanced after release" 0
    (Hashtbl.length m.Machine.allocated)

let test_backend_save_load_state () =
  (* The serving layer's eviction/migration path, uniformly: seal a
     resident's durable state out through one instance, hand it to a
     fresh instance of the same code. *)
  let m = dc5750 () in
  let inst =
    ok (Backend.sfi.Backend.launch m ~cpu:0 (keeper 0) ~input:"")
  in
  let rec drive () =
    match ok (inst.Backend.run_slice ~cpu:0 ()) with
    | `Finished -> ()
    | `Yielded ->
        ok (inst.Backend.resume ~cpu:0);
        drive ()
  in
  drive ();
  let saved = ok (inst.Backend.save_state ~cpu:0 ~tag:"durable") in
  checkb "sfi always has a binding to save under" true (saved <> None);
  let blob = Option.get saved in
  inst.Backend.release ();
  let inst2 =
    ok (Backend.sfi.Backend.launch m ~cpu:0 (keeper 0) ~input:"")
  in
  ok (inst2.Backend.load_state ~cpu:0 blob);
  inst2.Backend.release ();
  checki "balanced" 0 (Hashtbl.length m.Machine.allocated)

(* --- serving under SFI --- *)

let serve_sfi ?(seed = 11L) ?(cores = 2) ~duration rate =
  let config = Machine.low_fidelity Machine.hp_dc5750 in
  let config = { config with Machine.cpu_count = cores } in
  let m = Machine.create ~engine:(Engine.create ~seed ()) config in
  let cfg = Sea_serve.Server.config ~mode:Sea_serve.Server.Sfi ~duration () in
  match Sea_serve.Server.run m cfg (Sea_serve.Workload.preset ~tenants:3 (`Open rate)) with
  | Ok r -> r
  | Error e -> Alcotest.fail ("serve: " ^ e)

let test_sfi_serve_no_scarcity () =
  let r = serve_sfi ~duration:(Time.s 2.) 24. in
  let agg = r.Sea_serve.Report.aggregate in
  checkb "completes requests" true (agg.Sea_serve.Report.completed > 0);
  checki "no evictions without an sePCR bank" 0 r.Sea_serve.Report.evictions;
  checki "no sePCR waits" 0 r.Sea_serve.Report.sepcr_waits;
  checkb "cold starts bounded by (tenant, kind) pairs" true
    (r.Sea_serve.Report.cold_starts <= 3 * List.length Sea_serve.Workload.kinds);
  checkb "rows consistent" true
    (List.for_all
       (fun (row : Sea_serve.Report.row) ->
         row.Sea_serve.Report.offered
         = row.Sea_serve.Report.completed + row.Sea_serve.Report.shed
           + row.Sea_serve.Report.timed_out + row.Sea_serve.Report.failed)
       (agg :: r.Sea_serve.Report.rows))

let test_sfi_serve_deterministic () =
  let a = serve_sfi ~duration:(Time.s 1.) 16. in
  let b = serve_sfi ~duration:(Time.s 1.) 16. in
  checks "same seed, byte-identical render" (Sea_serve.Report.render a)
    (Sea_serve.Report.render b);
  let c = serve_sfi ~seed:12L ~duration:(Time.s 1.) 16. in
  checkb "seed-sensitive" true
    (Sea_serve.Report.render a <> Sea_serve.Report.render c)

let () =
  Alcotest.run "backend"
    [
      ( "modes",
        [
          Alcotest.test_case "cli names" `Quick test_mode_names;
          Alcotest.test_case "of_kind and cost hooks" `Quick
            test_backend_of_kind;
        ] );
      ( "exec",
        [
          Alcotest.test_case "architecture" `Quick test_exec_architecture;
          Alcotest.test_case "preempted one-shot completes (regression)"
            `Quick test_exec_preemption_regression;
          Alcotest.test_case "explicit sfi backend" `Quick
            test_exec_explicit_backend;
        ] );
      ( "sfi-session",
        [
          Alcotest.test_case "lifecycle and chain" `Quick test_sfi_lifecycle;
          Alcotest.test_case "preemption" `Quick test_sfi_preemption;
          Alcotest.test_case "runs without a TPM" `Quick
            test_sfi_runs_without_tpm;
          Alcotest.test_case "quote only after done" `Quick
            test_sfi_quote_after_done;
          Alcotest.test_case "sealed state across sessions" `Quick
            test_sfi_sealed_state_across_sessions;
          Alcotest.test_case "seal binds code identity" `Quick
            test_sfi_seal_binds_identity;
          Alcotest.test_case "unbounded residents, balanced pages" `Quick
            test_sfi_many_residents_balance;
          Alcotest.test_case "save/load state through the instance" `Quick
            test_backend_save_load_state;
        ] );
      ( "sfi-serve",
        [
          Alcotest.test_case "no evictions, no waits" `Quick
            test_sfi_serve_no_scarcity;
          Alcotest.test_case "deterministic" `Quick
            test_sfi_serve_deterministic;
        ] );
    ]
