(* Unit and property tests for the simulation substrate: time arithmetic,
   the deterministic RNG, statistics accumulators, the event queue's
   ordering guarantees, and the engine's two usage styles. *)

open Sea_sim

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Time --- *)

let test_time_units () =
  checki "1 us = 1000 ns" 1000 (Time.to_ns (Time.us 1.));
  checki "1 ms = 1e6 ns" 1_000_000 (Time.to_ns (Time.ms 1.));
  checki "1 s = 1e9 ns" 1_000_000_000 (Time.to_ns (Time.s 1.));
  check (Alcotest.float 1e-9) "roundtrip ms" 177.52 (Time.to_ms (Time.ms 177.52));
  checki "rounding" 1 (Time.to_ns (Time.us 0.0006))

let test_time_arith () =
  let a = Time.ms 2. and b = Time.us 500. in
  checki "add" 2_500_000 (Time.to_ns (Time.add a b));
  checki "sub" 1_500_000 (Time.to_ns (Time.sub a b));
  checki "scale" 10_000_000 (Time.to_ns (Time.scale a 5));
  checki "scale_f" 3_000_000 (Time.to_ns (Time.scale_f a 1.5));
  checkb "compare" true (Time.compare a b > 0);
  checki "min" (Time.to_ns b) (Time.to_ns (Time.min a b));
  checki "max" (Time.to_ns a) (Time.to_ns (Time.max a b))

let test_time_pp () =
  check Alcotest.string "ms rendering" "177.52 ms" (Time.to_string (Time.ms 177.52));
  check Alcotest.string "us rendering" "1.500 us" (Time.to_string (Time.us 1.5));
  check Alcotest.string "ns rendering" "42 ns" (Time.to_string (Time.ns 42));
  check Alcotest.string "s rendering" "1.500 s" (Time.to_string (Time.s 1.5))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L () and b = Rng.create ~seed:42L () in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1L () and b = Rng.create ~seed:2L () in
  checkb "different seeds diverge" true (Rng.int64 a <> Rng.int64 b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7L () in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int64 a) in
  let ys = List.init 10 (fun _ -> Rng.int64 b) in
  checkb "split streams differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Rng.create () in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    checkb "int in range" true (v >= 0 && v < 17);
    let f = Rng.float rng 3.5 in
    checkb "float in range" true (f >= 0. && f < 3.5)
  done;
  Alcotest.check_raises "nonpositive bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:99L () in
  let n = 20_000 in
  let acc = Stats.create () in
  for _ = 1 to n do
    Stats.add acc (Rng.gaussian rng ~mean:10. ~stdev:2.)
  done;
  checkb "mean near 10" true (abs_float (Stats.mean acc -. 10.) < 0.1);
  checkb "stdev near 2" true (abs_float (Stats.stdev acc -. 2.) < 0.1)

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:5L () in
  let acc = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add acc (Rng.exponential rng ~mean:4.)
  done;
  checkb "mean near 4" true (abs_float (Stats.mean acc -. 4.) < 0.15)

let test_rng_split_n_pairwise () =
  (* The cluster layer hands every machine a stream carved off one
     master: streams must be pairwise independent — no shared values at
     all in the first 10k draws of any pair. *)
  let streams = Rng.split_n (Rng.create ~seed:2024L ()) 8 in
  let draws =
    Array.map
      (fun s ->
        let tbl = Hashtbl.create 10_000 in
        for _ = 1 to 10_000 do
          Hashtbl.replace tbl (Rng.int64 s) ()
        done;
        tbl)
      streams
  in
  Array.iteri
    (fun i ti ->
      Array.iteri
        (fun j tj ->
          if i < j then begin
            let overlap =
              Hashtbl.fold
                (fun k () acc -> if Hashtbl.mem tj k then acc + 1 else acc)
                ti 0
            in
            checki (Printf.sprintf "streams %d/%d share draws" i j) 0 overlap
          end)
        draws)
    draws

let test_rng_split_n_stable () =
  (* Stream [i] depends only on the parent's state and [i], never on how
     many siblings were carved alongside it — this is what makes a
     4-machine fleet's machine 2 identical to an 8-machine fleet's. *)
  let streams_of n = Rng.split_n (Rng.create ~seed:99L ()) n in
  let a = streams_of 4 and b = streams_of 8 in
  for i = 0 to 3 do
    let x = List.init 100 (fun _ -> Rng.int64 a.(i)) in
    let y = List.init 100 (fun _ -> Rng.int64 b.(i)) in
    checkb (Printf.sprintf "stream %d same under n=4 and n=8" i) true (x = y)
  done;
  checki "zero streams" 0 (Array.length (Rng.split_n (Rng.create ()) 0));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Rng.split_n: negative count") (fun () ->
      ignore (Rng.split_n (Rng.create ()) (-1)))

let test_rng_bytes () =
  let rng = Rng.create () in
  let b = Rng.bytes rng 64 in
  checki "length" 64 (Bytes.length b);
  checkb "not all equal" true
    (Bytes.exists (fun c -> c <> Bytes.get b 0) b)

(* --- Stats --- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4.; 5. ];
  checki "count" 5 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 3. (Stats.mean s);
  check (Alcotest.float 1e-9) "stdev" (sqrt 2.5) (Stats.stdev s);
  check (Alcotest.float 1e-9) "min" 1. (Stats.min s);
  check (Alcotest.float 1e-9) "max" 5. (Stats.max s);
  check (Alcotest.float 1e-9) "median" 3. (Stats.percentile s 50.);
  check (Alcotest.float 1e-9) "p100" 5. (Stats.percentile s 100.)

let test_stats_empty_and_single () =
  let s = Stats.create () in
  check (Alcotest.float 0.) "empty mean" 0. (Stats.mean s);
  check (Alcotest.float 0.) "empty stdev" 0. (Stats.stdev s);
  Stats.add s 7.;
  check (Alcotest.float 0.) "single stdev" 0. (Stats.stdev s);
  check (Alcotest.float 0.) "single mean" 7. (Stats.mean s)

let test_stats_add_time () =
  let s = Stats.create () in
  Stats.add_time s (Time.ms 12.5);
  check (Alcotest.float 1e-9) "stored in ms" 12.5 (Stats.mean s)

let test_stats_samples_order () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 3.; 1.; 2. ];
  check Alcotest.(list (float 0.)) "insertion order" [ 3.; 1.; 2. ] (Stats.samples s)

(* --- Event queue --- *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:(Time.ms 3.) "c";
  Event_queue.push q ~time:(Time.ms 1.) "a";
  Event_queue.push q ~time:(Time.ms 2.) "b";
  let pop () = match Event_queue.pop q with Some (_, x) -> x | None -> "?" in
  check Alcotest.string "first" "a" (pop ());
  check Alcotest.string "second" "b" (pop ());
  check Alcotest.string "third" "c" (pop ());
  checkb "empty" true (Event_queue.is_empty q)

let test_queue_fifo_at_same_time () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:(Time.ms 1.) i
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  check Alcotest.(list int) "FIFO among equal timestamps" (List.init 10 Fun.id) order

let test_queue_peek_clear () =
  let q = Event_queue.create () in
  checkb "peek empty" true (Event_queue.peek_time q = None);
  Event_queue.push q ~time:(Time.ms 5.) ();
  checkb "peek" true (Event_queue.peek_time q = Some (Time.ms 5.));
  checki "length" 1 (Event_queue.length q);
  Event_queue.clear q;
  checkb "cleared" true (Event_queue.is_empty q)

let test_stats_min_max_empty_raise () =
  (* Regression: min/max used to return the infinity / neg_infinity fold
     identities on an empty accumulator, leaking [inf] into reports. *)
  let s = Stats.create () in
  Alcotest.check_raises "empty min"
    (Invalid_argument "Stats.min: empty accumulator") (fun () ->
      ignore (Stats.min s));
  Alcotest.check_raises "empty max"
    (Invalid_argument "Stats.max: empty accumulator") (fun () ->
      ignore (Stats.max s));
  Stats.add s 2.;
  check (Alcotest.float 0.) "min after add" 2. (Stats.min s);
  check (Alcotest.float 0.) "max after add" 2. (Stats.max s)

let test_queue_drained_drops_references () =
  (* Regression: pop used to leave the last heap slot aliasing the popped
     entry, so a drained queue pinned the payloads of everything that
     ever passed through it. *)
  let q = Event_queue.create () in
  let w = Weak.create 8 in
  for i = 0 to 7 do
    let payload = Bytes.make 64 (Char.chr (Char.code 'a' + i)) in
    Weak.set w i (Some payload);
    Event_queue.push q ~time:i payload
  done;
  while not (Event_queue.is_empty q) do
    ignore (Event_queue.pop q)
  done;
  Gc.full_major ();
  for i = 0 to 7 do
    checkb
      (Printf.sprintf "payload %d collected after drain" i)
      false
      (Weak.check w i)
  done;
  (* Keep the queue live past the weak checks: otherwise the GC may
     collect the whole queue (payloads and all) and mask a leak. *)
  checkb "queue still empty" true (Event_queue.is_empty (Sys.opaque_identity q))

let prop_queue_sorted =
  QCheck.Test.make ~name:"event queue pops in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 1_000_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain min_int)

(* --- Engine --- *)

let test_engine_advance () =
  let e = Engine.create () in
  checki "starts at zero" 0 (Time.to_ns (Engine.now e));
  Engine.advance e (Time.ms 2.);
  checki "advanced" 2_000_000 (Time.to_ns (Engine.now e));
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Engine.advance: negative duration") (fun () ->
      Engine.advance e (Time.ns (-1)))

let test_engine_elapse_to () =
  let e = Engine.create () in
  Engine.elapse_to e (Time.ms 5.);
  checki "moved forward" 5_000_000 (Time.to_ns (Engine.now e));
  Engine.elapse_to e (Time.ms 1.);
  checki "never moves back" 5_000_000 (Time.to_ns (Engine.now e))

let test_engine_events_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~after:(Time.ms 2.) (fun _ -> log := "b" :: !log);
  Engine.schedule e ~after:(Time.ms 1.) (fun _ -> log := "a" :: !log);
  Engine.schedule e ~after:(Time.ms 3.) (fun _ -> log := "c" :: !log);
  Engine.run e;
  check Alcotest.(list string) "order" [ "a"; "b"; "c" ] (List.rev !log);
  checki "clock at last event" 3_000_000 (Time.to_ns (Engine.now e))

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~after:(Time.ms 1.) (fun _ -> incr fired);
  Engine.schedule e ~after:(Time.ms 10.) (fun _ -> incr fired);
  Engine.run ~until:(Time.ms 5.) e;
  checki "only first fired" 1 !fired;
  checki "one pending" 1 (Engine.pending e);
  checki "clock at limit" 5_000_000 (Time.to_ns (Engine.now e));
  Engine.run e;
  checki "second fired" 2 !fired

let prop_engine_fifo_at_equal_times =
  (* The serving loop's determinism rests on this: events scheduled for
     the same instant fire in insertion order, however many collide. *)
  QCheck.Test.make
    ~name:"engine fires identical-timestamp events in FIFO insertion order"
    ~count:200
    QCheck.(list (int_bound 5))
    (fun times ->
      let e = Engine.create () in
      let log = ref [] in
      List.iteri
        (fun i t ->
          Engine.schedule_at e
            ~time:(Time.ms (float_of_int t))
            (fun _ -> log := (t, i) :: !log))
        times;
      Engine.run e;
      let fired = List.rev !log in
      let rec ordered = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && i1 < i2)) && ordered rest
        | _ -> true
      in
      List.length fired = List.length times && ordered fired)

let prop_engine_run_until_partitions =
  (* [run ~until] fires exactly the events at or before the cutoff,
     leaves the rest queued, and parks the clock at the cutoff when
     anything remains. *)
  QCheck.Test.make
    ~name:"run ~until fires events at or before the cutoff, queues the rest"
    ~count:200
    QCheck.(pair (list (int_bound 100)) (int_bound 100))
    (fun (times, until) ->
      let e = Engine.create () in
      let fired = ref 0 in
      List.iter
        (fun t ->
          Engine.schedule_at e ~time:(Time.ms (float_of_int t)) (fun _ ->
              incr fired))
        times;
      Engine.run ~until:(Time.ms (float_of_int until)) e;
      let expected = List.length (List.filter (fun t -> t <= until) times) in
      let clock_ok =
        if Engine.pending e > 0 then Engine.now e = Time.ms (float_of_int until)
        else
          (* Queue drained: the clock rests at the last event fired. *)
          Engine.now e
          = Time.ms (float_of_int (List.fold_left Stdlib.max 0 (0 :: times)))
      in
      !fired = expected
      && Engine.pending e = List.length times - expected
      && clock_ok)

let test_engine_cascading_events () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    if !count < 5 then Engine.schedule engine ~after:(Time.ms 1.) tick
  in
  Engine.schedule e ~after:(Time.ms 1.) tick;
  Engine.run e;
  checki "chain of 5" 5 !count;
  checki "clock after chain" 5_000_000 (Time.to_ns (Engine.now e))

let test_engine_step () =
  let e = Engine.create () in
  checkb "step on empty" false (Engine.step e);
  Engine.schedule e ~after:(Time.ms 1.) (fun _ -> ());
  checkb "step fires" true (Engine.step e)

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "arithmetic" `Quick test_time_arith;
          Alcotest.test_case "pretty-printing" `Quick test_time_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "split_n pairwise independence" `Quick
            test_rng_split_n_pairwise;
          Alcotest.test_case "split_n stable across counts" `Quick
            test_rng_split_n_stable;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "bytes" `Quick test_rng_bytes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary statistics" `Quick test_stats_basic;
          Alcotest.test_case "empty and single" `Quick test_stats_empty_and_single;
          Alcotest.test_case "add_time unit" `Quick test_stats_add_time;
          Alcotest.test_case "samples order" `Quick test_stats_samples_order;
          Alcotest.test_case "empty min/max raise" `Quick
            test_stats_min_max_empty_raise;
        ] );
      ( "event-queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "FIFO at equal times" `Quick test_queue_fifo_at_same_time;
          Alcotest.test_case "peek and clear" `Quick test_queue_peek_clear;
          Alcotest.test_case "drained queue drops references" `Quick
            test_queue_drained_drops_references;
          QCheck_alcotest.to_alcotest prop_queue_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "advance" `Quick test_engine_advance;
          Alcotest.test_case "elapse_to" `Quick test_engine_elapse_to;
          Alcotest.test_case "events in order" `Quick test_engine_events_in_order;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          QCheck_alcotest.to_alcotest prop_engine_fifo_at_equal_times;
          QCheck_alcotest.to_alcotest prop_engine_run_until_partitions;
          Alcotest.test_case "cascading events" `Quick test_engine_cascading_events;
          Alcotest.test_case "step" `Quick test_engine_step;
        ] );
    ]
