(* Tests for the fleet layer: routing policies, shard-count determinism
   (the load-bearing property: the merged report is byte-identical on 1
   and 4 domains), per-machine seed independence, the merge invariants,
   and the CLI-facing config validation. *)

open Sea_sim
open Sea_serve
open Sea_cluster

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let machine_config = Sea_hw.Machine.low_fidelity Sea_hw.Machine.hp_dc5750

let serve_config ?faults ?discipline ~mode () =
  Server.config ~queue_depth:8 ?faults ?discipline ~mode ~duration:(Time.s 1.)
    ()

let run_fleet ?seed ?(machines = 4) ?(shards = 1) ?(policy = Router.Round_robin)
    ?faults ?discipline ?(mode = Server.Proposed) ?(tenants = 8) ?(rate = 40.)
    () =
  let machine_config =
    match mode with
    | Server.Current | Server.Sfi -> machine_config
    | Server.Proposed -> Sea_hw.Machine.proposed_variant machine_config
  in
  let cfg = Cluster.config ~shards ~policy ~machines () in
  Cluster.run ?seed cfg ~machine_config
    ~serve:(serve_config ?faults ?discipline ~mode ())
    (Workload.preset ~tenants (`Open rate))

let run_fleet_exn ?seed ?machines ?shards ?policy ?faults ?discipline ?mode
    ?tenants ?rate () =
  match
    run_fleet ?seed ?machines ?shards ?policy ?faults ?discipline ?mode
      ?tenants ?rate ()
  with
  | Ok fr -> fr
  | Error e -> Alcotest.fail ("fleet run failed: " ^ e)

(* --- routing --- *)

let tenant name rate =
  {
    Workload.name;
    weight = 1;
    mix = [ (Workload.Ssh_auth, 1) ];
    process = Workload.Open_loop { rate_per_s = rate };
    deadline = None;
    shape = Workload.Steady;
  }

let test_router_round_robin () =
  let tenants = List.init 7 (fun i -> tenant (Printf.sprintf "t%d" i) 1.) in
  let a = Router.assign Router.Round_robin ~machines:3 tenants in
  check
    Alcotest.(array int)
    "i mod machines"
    [| 0; 1; 2; 0; 1; 2; 0 |]
    a

let test_router_hash_by_name () =
  let tenants = List.init 12 (fun i -> tenant (Printf.sprintf "t%d" i) 1.) in
  let a = Router.assign Router.Hash_tenant ~machines:4 tenants in
  Array.iter (fun m -> checkb "in range" true (m >= 0 && m < 4)) a;
  (* A tenant's home depends on its name alone, not its list position. *)
  let shuffled = List.rev tenants in
  let b = Router.assign Router.Hash_tenant ~machines:4 shuffled in
  List.iteri
    (fun i t ->
      let j =
        let rec find k = function
          | [] -> Alcotest.fail "tenant lost in shuffle"
          | t' :: _ when t'.Workload.name = t.Workload.name -> k
          | _ :: rest -> find (k + 1) rest
        in
        find 0 shuffled
      in
      checki (t.Workload.name ^ " stable under reorder") a.(i) b.(j))
    tenants;
  (* Consistent: growing the fleet only moves tenants, never reshuffles
     the ones whose machine survives — every tenant that moves moves to
     the new machine or stays put. *)
  let c = Router.assign Router.Hash_tenant ~machines:5 tenants in
  List.iteri
    (fun i _ ->
      checkb "move only to the new machine" true (c.(i) = a.(i) || c.(i) = 4))
    tenants

let test_router_least_loaded () =
  (* One heavy tenant followed by light ones: the heavy one claims a
     machine alone; the light ones spread over the remaining machines. *)
  let tenants =
    tenant "heavy" 100. :: List.init 4 (fun i -> tenant (Printf.sprintf "l%d" i) 1.)
  in
  let a = Router.assign Router.Least_loaded ~machines:2 tenants in
  checki "heavy claims machine 0" 0 a.(0);
  check
    Alcotest.(array int)
    "lights all land on the other machine"
    [| 0; 1; 1; 1; 1 |]
    a

let test_router_cost_weighted () =
  (* Four tenants at the same offered rate, but one's mix is the
     certificate-expensive KV kind: cost weighting gives it a machine
     alone, while rate-only least-loaded sees four equal tenants and
     alternates them. *)
  let mix name kind =
    {
      Workload.name;
      weight = 1;
      mix = [ (kind, 1) ];
      process = Workload.Open_loop { rate_per_s = 1. };
      deadline = None;
      shape = Workload.Steady;
    }
  in
  let tenants =
    [
      mix "kv" Workload.Kv_update;
      mix "s0" Workload.Ssh_auth;
      mix "s1" Workload.Ssh_auth;
      mix "s2" Workload.Ssh_auth;
    ]
  in
  let a = Router.assign Router.Cost_weighted ~machines:2 tenants in
  check
    Alcotest.(array int)
    "expensive mix claims a machine alone"
    [| 0; 1; 1; 1 |]
    a;
  checkb "differs from rate-only least-loaded" true
    (Router.assign Router.Least_loaded ~machines:2 tenants <> a)

let test_router_rejects_no_machines () =
  Alcotest.check_raises "machines < 1"
    (Invalid_argument "Router.assign: machines must be positive") (fun () ->
      ignore (Router.assign Router.Round_robin ~machines:0 [ tenant "t" 1. ]))

(* --- determinism across shard counts --- *)

let test_shard_determinism () =
  List.iter
    (fun mode ->
      let r1 = run_fleet_exn ~shards:1 ~mode () in
      let r4 = run_fleet_exn ~shards:4 ~mode () in
      checks
        (Server.mode_name mode ^ ": shards=1 = shards=4")
        (Fleet_report.render r1) (Fleet_report.render r4))
    [ Server.Current; Server.Proposed; Server.Sfi ]

let test_shard_determinism_with_faults () =
  let faults = Sea_fault.Fault.spec ~seed:13 ~rate:0.05 () in
  let r1 = run_fleet_exn ~shards:1 ~faults () in
  let r3 = run_fleet_exn ~shards:3 ~faults () in
  checks "fault schedules shard-independent" (Fleet_report.render r1)
    (Fleet_report.render r3)

let test_cost_shard_determinism () =
  (* The load-bearing property extended to the cost-aware pair: with
     cost-weighted routing and cost-budget admission, shards 1 and 4
     still merge to a byte-identical fleet report, and the budget
     surfaces in it. *)
  let go shards =
    run_fleet_exn ~seed:5L ~shards ~policy:Router.Cost_weighted
      ~discipline:(Admission.Cost 4_000_000) ()
  in
  let r1 = go 1 and r4 = go 4 in
  checks "cost-aware fleet is shard-independent" (Fleet_report.render r1)
    (Fleet_report.render r4);
  checkb "fleet report surfaces the budget" true
    (r1.Fleet_report.cost_budget = Some 4_000_000)

let test_repeatable_and_seed_sensitive () =
  let a = run_fleet_exn ~seed:5L () and b = run_fleet_exn ~seed:5L () in
  checks "same seed, same fleet report" (Fleet_report.render a)
    (Fleet_report.render b);
  let c = run_fleet_exn ~seed:6L () in
  checkb "different seed, different fleet report" true
    (Fleet_report.render a <> Fleet_report.render c)

let test_machine_seed_independence () =
  (* Growing the fleet must not disturb the machines that already
     existed: with round-robin and a tenant count that keeps machine 0's
     share fixed, machine 0's report is the same in a 2-machine and a
     4-machine fleet (its engine stream depends only on (seed, 0)). *)
  let share_of fr i =
    match List.nth fr.Fleet_report.per_machine i with
    | { Fleet_report.report = Some r; _ } -> Report.render r
    | _ -> Alcotest.fail "machine unexpectedly idle"
  in
  (* Hash routing keeps most tenants put when the fleet grows by one
     machine; any machine whose tenant share is literally unchanged must
     then produce a byte-identical report in both fleets. *)
  let tenants = List.init 8 (fun i -> tenant (Printf.sprintf "t%d" i) 4.) in
  let run machines =
    let cfg = Cluster.config ~policy:Router.Hash_tenant ~machines () in
    match
      Cluster.run ~seed:9L cfg
        ~machine_config:(Sea_hw.Machine.proposed_variant machine_config)
        ~serve:(serve_config ~mode:Server.Proposed ())
        tenants
    with
    | Ok fr -> fr
    | Error e -> Alcotest.fail e
  in
  let small = run 4 and large = run 5 in
  let a4 = Router.assign Router.Hash_tenant ~machines:4 tenants in
  let a5 = Router.assign Router.Hash_tenant ~machines:5 tenants in
  let shares a m =
    List.filteri (fun i _ -> a.(i) = m) tenants
    |> List.map (fun t -> t.Workload.name)
  in
  let compared = ref 0 in
  for m = 0 to 3 do
    if shares a4 m = shares a5 m && shares a4 m <> [] then begin
      incr compared;
      checks
        (Printf.sprintf "machine %d unchanged by fleet growth" m)
        (share_of small m) (share_of large m)
    end
  done;
  (* At least one machine's share survives 4 -> 5 growth with this
     population; if the ring constants ever change such that none does,
     this fails loudly instead of the test silently passing. *)
  checkb "at least one machine share survived fleet growth" true
    (!compared > 0)

(* --- merge invariants --- *)

let test_merge_invariants () =
  let fr = run_fleet_exn ~machines:3 ~tenants:7 () in
  let f = fr.Fleet_report.fleet in
  let per_machine_sum field =
    List.fold_left
      (fun acc row ->
        match row.Fleet_report.report with
        | None -> acc
        | Some r -> acc + field r.Report.aggregate)
      0 fr.Fleet_report.per_machine
  in
  checki "offered sums" f.Report.offered
    (per_machine_sum (fun a -> a.Report.offered));
  checki "completed sums" f.Report.completed
    (per_machine_sum (fun a -> a.Report.completed));
  checki "shed sums" f.Report.shed (per_machine_sum (fun a -> a.Report.shed));
  checkb "fleet row consistent" true (Report.row_consistent f);
  (* Exact cross-machine percentiles: the fleet sample count is the sum
     of the machine sample counts. *)
  checki "latency samples concatenate"
    (Stats.count f.Report.latency_ms)
    (List.fold_left
       (fun acc row ->
         match row.Fleet_report.report with
         | None -> acc
         | Some r -> acc + Stats.count r.Report.aggregate.Report.latency_ms)
       0 fr.Fleet_report.per_machine);
  (* The window is the slowest machine's window. *)
  checkb "window is max" true
    (List.for_all
       (fun row ->
         match row.Fleet_report.report with
         | None -> true
         | Some r -> Time.compare r.Report.window fr.Fleet_report.window <= 0)
       fr.Fleet_report.per_machine)

let test_idle_machines_render () =
  (* More machines than tenants: the extras are idle but still listed. *)
  let fr = run_fleet_exn ~machines:6 ~tenants:2 ~rate:8. () in
  checki "six rows" 6 (List.length fr.Fleet_report.per_machine);
  checki "four idle" 4 fr.Fleet_report.idle;
  checkb "idle rendered" true
    (let s = Fleet_report.render fr in
     let rec count i acc =
       match String.index_from_opt s i 'i' with
       | Some j when j + 4 <= String.length s && String.sub s j 4 = "idle" ->
           count (j + 4) (acc + 1)
       | Some j -> count (j + 1) acc
       | None -> acc
     in
     count 0 0 >= 4)

(* --- validation (the CLI-facing bugfix) --- *)

let test_config_validation () =
  Alcotest.check_raises "machines = 0"
    (Invalid_argument "--machines must be positive") (fun () ->
      ignore (Cluster.config ~machines:0 ()));
  Alcotest.check_raises "machines < 0"
    (Invalid_argument "--machines must be positive") (fun () ->
      ignore (Cluster.config ~machines:(-3) ()));
  Alcotest.check_raises "shards = 0"
    (Invalid_argument "--shards must be positive") (fun () ->
      ignore (Cluster.config ~shards:0 ~machines:2 ()));
  Alcotest.check_raises "shards > machines"
    (Invalid_argument "--shards must not exceed --machines (idle shards)")
    (fun () -> ignore (Cluster.config ~shards:4 ~machines:2 ()));
  let ok = Cluster.config ~shards:2 ~machines:2 () in
  checki "shards = machines allowed" 2 ok.Cluster.shards

let test_run_rejects_empty_and_retry () =
  let cfg = Cluster.config ~machines:2 () in
  Alcotest.check_raises "no tenants"
    (Invalid_argument "Cluster.run: no tenants") (fun () ->
      ignore
        (Cluster.run cfg ~machine_config
           ~serve:(serve_config ~mode:Server.Current ())
           []));
  let serve =
    Server.config ~queue_depth:8
      ~faults:(Sea_fault.Fault.spec ~seed:1 ~rate:0.01 ())
      ~retry:(Sea_fault.Retry.policy ())
      ~mode:Server.Current ~duration:(Time.s 1.) ()
  in
  match
    Cluster.run cfg ~machine_config ~serve (Workload.preset ~tenants:2 (`Open 2.))
  with
  | Ok _ -> Alcotest.fail "preset retry policy must be rejected"
  | Error e ->
      let contains_sub s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      checkb "error names retry" true (contains_sub e "retry")

(* --- churn: failure domains, detection, failover --- *)

(* The same widened seed band as the fault soak: SEA_FAULT_SEEDS in CI
   sweeps the migration-atomicity property across 8 seeds. *)
let churn_seeds =
  match Sys.getenv_opt "SEA_FAULT_SEEDS" with
  | None | Some "" -> [ 1; 2; 3 ]
  | Some s ->
      String.split_on_char ' ' s
      |> List.concat_map (String.split_on_char ',')
      |> List.filter_map int_of_string_opt

let proposed_config = Sea_hw.Machine.proposed_variant machine_config

let churn_fleet ?(machines = 4) ?(shards = 1) ?(mode = Server.Proposed)
    ?(failover = true) ?(link_loss = 0.) ?(mttf = 1.5) ?(mttr = 2.) ?partition
    ?(plan_seed = 1) ?(duration = 4.) ?(rate = 32.) ?trace () =
  let machine_config =
    match mode with
    | Server.Current | Server.Sfi -> machine_config
    | Server.Proposed -> proposed_config
  in
  let cfg = Cluster.config ~shards ~machines () in
  let serve =
    Server.config ~queue_depth:8 ~mode ~duration:(Time.s duration) ()
  in
  let plan =
    Sea_fault.Machine_fault.spec ~mttf:(Time.s mttf) ~mttr:(Time.s mttr)
      ?partition ~link_loss ~seed:plan_seed ()
  in
  let churn = Cluster.churn ~failover plan () in
  match
    Cluster.run ~seed:3L ?trace ~churn cfg ~machine_config ~serve
      (Workload.preset ~tenants:8 (`Open rate))
  with
  | Ok fr -> fr
  | Error e -> Alcotest.fail ("churn fleet run failed: " ^ e)

let test_churn_shard_determinism () =
  (* The load-bearing property survives churn: crashes, partitions,
     heartbeat detection, lossy migrations — the merged render must
     still be byte-identical across shard counts on all three modes. *)
  List.iter
    (fun mode ->
      let go shards =
        churn_fleet ~machines:6 ~shards ~mode ~link_loss:0.3
          ~partition:(Time.s 1.) ()
      in
      checks
        (Server.mode_name mode ^ ": churn shards 1 = 3")
        (Fleet_report.render (go 1))
        (Fleet_report.render (go 3)))
    [ Server.Current; Server.Proposed; Server.Sfi ]

let test_churn_quiet_plan_prefix () =
  let cfg = Cluster.config ~machines:4 () in
  let serve =
    Server.config ~queue_depth:8 ~mode:Server.Proposed ~duration:(Time.s 1.) ()
  in
  let tenants = Workload.preset ~tenants:8 (`Open 32.) in
  let plain =
    match
      Cluster.run ~seed:3L cfg ~machine_config:proposed_config ~serve tenants
    with
    | Ok fr -> Fleet_report.render fr
    | Error e -> Alcotest.fail e
  in
  (* An MTTF of ~3 hours against a 1 s window: the plan draws no outage,
     so the epoch path must reproduce the plain schedule exactly. *)
  let quiet =
    let plan = Sea_fault.Machine_fault.spec ~mttf:(Time.s 10_000.) () in
    match
      Cluster.run ~seed:3L ~churn:(Cluster.churn plan ()) cfg
        ~machine_config:proposed_config ~serve tenants
    with
    | Ok fr -> fr
    | Error e -> Alcotest.fail e
  in
  let quiet_render = Fleet_report.render quiet in
  checkb "quiet-churn render extends the plain render" true
    (String.length quiet_render > String.length plain
    && String.sub quiet_render 0 (String.length plain) = plain);
  (match quiet.Fleet_report.churn with
  | None -> Alcotest.fail "churn stats missing"
  | Some c ->
      checki "no crashes" 0 c.Fleet_report.crashes;
      checki "no lost requests" 0 c.Fleet_report.lost_requests)

let test_churn_counters_and_recovery () =
  (* A harsh plan on the proposed fleet: outages happen, the detector
     fires, tenants move, and sealed-state migrations run. *)
  let fr = churn_fleet ~machines:4 ~mttf:1. ~mttr:2. ~duration:4. () in
  match fr.Fleet_report.churn with
  | None -> Alcotest.fail "churn stats missing"
  | Some c ->
      checkb "outages happened" true (c.Fleet_report.crashes > 0);
      checkb "detector counted misses" true (c.Fleet_report.heartbeat_misses > 0);
      checkb "tenants moved" true (c.Fleet_report.failovers > 0);
      checkb "migrations ran" true
        (c.Fleet_report.migrations + c.Fleet_report.cold_restarts > 0);
      checkb "black-holed traffic is accounted" true
        (c.Fleet_report.lost_requests > 0);
      (* The fleet row still balances with lost requests folded in. *)
      let f = fr.Fleet_report.fleet in
      checki "offered = completed + shed + timed_out + failed"
        f.Report.offered
        (f.Report.completed + f.Report.shed + f.Report.timed_out
       + f.Report.failed);
      let render = Fleet_report.render fr in
      let contains_sub s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      checkb "churn line rendered" true (contains_sub render "churn: crashes");
      checkb "recovered goodput rendered" true
        (contains_sub render "recovered goodput")

let test_failover_beats_fail_in_place () =
  (* The bench headline at test scale: failover must recover strictly
     more completions than failing in place under the same plan. *)
  let completed failover =
    (churn_fleet ~machines:6 ~failover ~mttf:1. ~mttr:3. ~duration:4.
       ~rate:48. ())
      .Fleet_report.fleet.Report.completed
  in
  let on = completed true and off = completed false in
  checkb
    (Printf.sprintf "failover on (%d) > off (%d)" on off)
    true (on > off)

let test_down_machine_renders_na () =
  (* Satellite regression: a machine down for its whole window has an
     empty completion window — the fleet merge and render must show n/a
     instead of raising from the empty sample set. *)
  checkb "percentile_opt on empty is None" true
    (Stats.percentile_opt (Stats.create ()) 95. = None);
  let serving =
    match run_fleet ~machines:1 ~tenants:2 ~rate:8. () with
    | Ok fr -> (
        match (List.hd fr.Fleet_report.per_machine).Fleet_report.report with
        | Some r -> r
        | None -> Alcotest.fail "machine idle")
    | Error e -> Alcotest.fail e
  in
  let rows =
    [
      { Fleet_report.index = 0; tenants = 2; report = Some serving; lost = 0 };
      { Fleet_report.index = 1; tenants = 2; report = None; lost = 37 };
    ]
  in
  let churn_stats =
    {
      Fleet_report.failover = false;
      crashes = 1;
      partitions = 0;
      heartbeat_misses = 3;
      failovers = 0;
      migrations = 0;
      cold_restarts = 0;
      torn_backouts = 0;
      link_drops = 0;
      link_retries = 0;
      lost_requests = 37;
      recovered = 0;
    }
  in
  let fr = Fleet_report.merge ~churn:churn_stats ~policy:"round-robin" rows in
  let render = Fleet_report.render fr in
  let contains_sub s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  checkb "down row renders n/a" true (contains_sub render "n/a (down)");
  checki "lost requests fold into fleet offered" fr.Fleet_report.fleet.Report.offered
    (serving.Report.aggregate.Report.offered + 37);
  checki "lost requests fold into fleet failed" fr.Fleet_report.fleet.Report.failed
    (serving.Report.aggregate.Report.failed + 37);
  checkb "down machine is not idle" true (fr.Fleet_report.idle = 0)

let test_migration_atomicity () =
  (* The exactly-once property, swept across the fault-seed band and a
     ladder of link-loss rates: whatever the link does to the transfer,
     the PAL ends resident on exactly one machine — suspended on the
     target, with every source-side claim (pages, sePCR) released — and
     a torn transfer is always reported as a cold restart. *)
  let pal = Workload.resident_pal Workload.Ssh_auth in
  List.iter
    (fun seed ->
      List.iter
        (fun loss ->
          List.iter
            (fun source_alive ->
              let mk i =
                Sea_hw.Machine.create
                  ~engine:
                    (Engine.create ~seed:(Int64.of_int ((seed * 7) + i)) ())
                  proposed_config
              in
              let source = mk 0 and target = mk 1 in
              let bank m =
                match Sea_tpm.Tpm.sepcr_bank (Sea_hw.Machine.tpm_exn m) with
                | Some b -> b
                | None -> Alcotest.fail "no sePCR bank on proposed hw"
              in
              let free_sepcrs m = Sea_tpm.Sepcr.free_count (bank m) in
              let free_pages m =
                List.length m.Sea_hw.Machine.free_list
              in
              let s_sepcr = free_sepcrs source and s_pages = free_pages source in
              let t_sepcr = free_sepcrs target and t_pages = free_pages target in
              let link =
                Link.create ~loss
                  (Rng.create ~seed:(Int64.of_int ((seed * 31) + 5)) ())
              in
              let ctx =
                Printf.sprintf "seed %d loss %.1f alive %b" seed loss
                  source_alive
              in
              match
                Migrate.failover ~source ~target ~link ~source_alive
                  ~blob_available:(seed mod 2 = 0) ~tenant:"t" ~kind_name:"ssh"
                  pal ()
              with
              | Error e -> Alcotest.fail (ctx ^ ": resident on neither: " ^ e)
              | Ok r ->
                  (* Resident on the target, exactly once... *)
                  checkb (ctx ^ ": target suspended") true
                    (Sea_core.Slaunch_session.state r.Migrate.target
                    = Sea_core.Lifecycle.Suspend);
                  (* ...and nowhere on the source: every claim the
                     protocol made there is back out. *)
                  checki (ctx ^ ": source sePCRs restored") s_sepcr
                    (free_sepcrs source);
                  checki (ctx ^ ": source pages restored") s_pages
                    (free_pages source);
                  (if r.Migrate.torn then
                     checkb (ctx ^ ": torn implies cold") true
                       (r.Migrate.outcome = Migrate.Cold));
                  Migrate.dispose r;
                  checki (ctx ^ ": target sePCRs restored after dispose")
                    t_sepcr (free_sepcrs target);
                  checki (ctx ^ ": target pages restored after dispose")
                    t_pages (free_pages target))
            [ true; false ])
        [ 0.; 0.5; 0.9 ])
    churn_seeds

let test_churn_trace_gated () =
  (* Tracing must be observer-only: the same churn run with per-machine
     sinks installed renders byte-identically, and the sinks carry the
     churn category's events. *)
  let plain = churn_fleet ~machines:4 ~mttf:1. ~mttr:2. () in
  let sinks = Array.init 4 (fun _ -> Sea_trace.Trace.create ()) in
  let traced =
    churn_fleet ~machines:4 ~mttf:1. ~mttr:2. ~trace:(fun i -> sinks.(i)) ()
  in
  checks "render identical with tracing on"
    (Fleet_report.render plain)
    (Fleet_report.render traced);
  let all_json =
    String.concat "" (Array.to_list (Array.map Sea_trace.Trace.export_json sinks))
  in
  let contains_sub s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  checkb "heartbeat misses traced" true (contains_sub all_json "heartbeat-miss");
  checkb "migration spans traced" true (contains_sub all_json "migrate")

let test_churn_validation () =
  let plan = Sea_fault.Machine_fault.spec ~mttf:(Time.s 2.) () in
  Alcotest.check_raises "heartbeat must be positive"
    (Invalid_argument "Cluster.churn: heartbeat must be positive") (fun () ->
      ignore (Cluster.churn ~heartbeat:Time.zero plan ()));
  Alcotest.check_raises "dead_after must be >= 1"
    (Invalid_argument "Cluster.churn: dead_after must be >= 1") (fun () ->
      ignore (Cluster.churn ~dead_after:0 plan ()));
  Alcotest.check_raises "mttf must be positive"
    (Invalid_argument "Machine_fault.spec: mttf must be positive") (fun () ->
      ignore (Sea_fault.Machine_fault.spec ~mttf:Time.zero ()));
  (* Failover with a single machine has no survivor: Error, not a hang
     or a silent no-op. *)
  let cfg = Cluster.config ~machines:1 () in
  let serve =
    Server.config ~queue_depth:8 ~mode:Server.Proposed ~duration:(Time.s 1.) ()
  in
  match
    Cluster.run ~churn:(Cluster.churn plan ()) cfg
      ~machine_config:proposed_config ~serve
      (Workload.preset ~tenants:2 (`Open 8.))
  with
  | Ok _ -> Alcotest.fail "single-machine failover must be rejected"
  | Error e ->
      let contains_sub s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      checkb "error names the machine requirement" true
        (contains_sub e "at least 2 machines")

(* --- autoscale --- *)

let contains_sub s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_autoscale_decide () =
  let cfg =
    Autoscale.config ~policy:Autoscale.Migrate ~interval:(Time.ms 250.)
      ~hot_threshold:2. ()
  in
  let weights = [| 32; 32; 32; 32 |] in
  let alive = [| true; true; true; true |] in
  (* One machine at 4x the others: hot, halved; the cold ones are
     already at full weight so they stay put. *)
  let d =
    Autoscale.decide cfg ~weights ~alive ~loads:[| 400.; 100.; 100.; 100. |]
  in
  check Alcotest.(list int) "hot machine detected" [ 0 ] d.Autoscale.hot;
  check Alcotest.(array int) "hot halved, full-weight cool untouched"
    [| 16; 32; 32; 32 |] d.Autoscale.weights;
  (* Inside the hysteresis band nothing changes. *)
  let d =
    Autoscale.decide cfg ~weights ~alive ~loads:[| 150.; 100.; 100.; 100. |]
  in
  check Alcotest.(array int) "hysteresis band is a no-op" weights
    d.Autoscale.weights;
  (* A shrunken machine regrows (doubling) only when cold. *)
  let d =
    Autoscale.decide cfg ~weights:[| 4; 32; 32; 32 |] ~alive
      ~loads:[| 10.; 200.; 200.; 200. |]
  in
  check Alcotest.(list int) "cooled machine listed" [ 0 ] d.Autoscale.cooled;
  check Alcotest.(array int) "cooled machine regrows" [| 8; 32; 32; 32 |]
    d.Autoscale.weights;
  (* min_weight floors the shrink. *)
  let floor_cfg =
    Autoscale.config ~policy:Autoscale.Migrate ~interval:(Time.ms 250.)
      ~hot_threshold:2. ~min_weight:8 ()
  in
  let d =
    Autoscale.decide floor_cfg ~weights:[| 8; 32; 32; 32 |] ~alive
      ~loads:[| 900.; 100.; 100.; 100. |]
  in
  check Alcotest.(array int) "min_weight floors the shrink"
    [| 8; 32; 32; 32 |] d.Autoscale.weights;
  (* Zero load everywhere: no decision at all. *)
  let d = Autoscale.decide cfg ~weights ~alive ~loads:[| 0.; 0.; 0.; 0. |] in
  check Alcotest.(array int) "zero mean is a no-op" weights d.Autoscale.weights;
  checkb "no hot or cooled on zero mean" true
    (d.Autoscale.hot = [] && d.Autoscale.cooled = []);
  (* Dead machines are invisible: excluded from the mean and never
     resized. *)
  let d =
    Autoscale.decide cfg ~weights ~alive:[| true; false; true; true |]
      ~loads:[| 500.; 10_000.; 100.; 100. |]
  in
  check Alcotest.(list int) "dead machine not detected" [ 0 ] d.Autoscale.hot;
  check Alcotest.(array int) "dead machine never resized"
    [| 16; 32; 32; 32 |] d.Autoscale.weights

(* Satellite regression for the ring-resize stability bound: resizing
   (or removing) ONE machine must move at most ~its own share of the
   tenants — pinned at <= 2/N — and every mover must come off the
   resized machine. Before the splitmix64 finalizer landed in
   [Router.ring_key], raw FNV-1a left each machine's points in a few
   tight clumps, so machine 0 owned one giant arc that survived any
   weight: resizes moved (almost) nothing and this bound held only
   vacuously; the companion check below (shrinking to weight 1 sheds
   most tenants) is what failed. *)
let test_ring_resize_stability () =
  let machines = 4 in
  let tenants =
    List.init 200 (fun i -> tenant (Printf.sprintf "tenant-%d.example" i) 1.)
  in
  let alive = List.init machines Fun.id in
  let place ?weights () =
    let ring = Router.make_ring ?weights alive in
    List.map (fun t -> Router.lookup ring t) tenants
  in
  let base = place () in
  let full = Array.make machines Router.virtual_points in
  (* Halving one machine's weight: movers only off that machine, total
     moved fraction <= 2/N. *)
  for m = 0 to machines - 1 do
    let weights = Array.copy full in
    weights.(m) <- Router.virtual_points / 2;
    let resized = place ~weights () in
    let moved = ref 0 in
    List.iter2
      (fun b r ->
        if b <> r then begin
          incr moved;
          checki (Printf.sprintf "mover left machine %d" m) m b
        end)
      base resized;
    checkb
      (Printf.sprintf "halving machine %d moved %d <= 2/N of 200" m !moved)
      true
      (float_of_int !moved <= 2. /. float_of_int machines *. 200.)
  done;
  (* Restoring the weight restores the placement exactly. *)
  let weights = Array.copy full in
  weights.(0) <- 1;
  weights.(0) <- Router.virtual_points;
  check Alcotest.(list int) "restore is exact" base (place ~weights ());
  (* The companion direction: shrinking to weight 1 must actually shed
     load — the machine keeps at most a ~1-point share of the ring. *)
  let weights = Array.copy full in
  weights.(0) <- 1;
  let kept =
    List.length (List.filter (fun h -> h = 0) (place ~weights ()))
  in
  let before = List.length (List.filter (fun h -> h = 0) base) in
  checkb
    (Printf.sprintf "weight 1 sheds load (%d -> %d tenants)" before kept)
    true
    (kept * 4 <= before);
  (* Removing a machine outright: same bound, same directionality. *)
  let survivors = [ 0; 1; 3 ] in
  let ring = Router.make_ring survivors in
  let moved = ref 0 in
  List.iter2
    (fun b t ->
      let r = Router.lookup ring t in
      if b <> r then begin
        incr moved;
        checki "mover came off the removed machine" 2 b
      end
      else checkb "survivor keeps home" true (b <> 2 || r <> 2))
    base tenants;
  checkb
    (Printf.sprintf "removal moved %d <= 2/N of 200" !moved)
    true
    (float_of_int !moved <= 2. /. float_of_int machines *. 200.)

(* A 12-tenant population with the flash crowd concentrated on the
   ring's most-loaded machine — the A12 bench scenario in miniature,
   reused by the determinism, counter and race tests below. *)
let hotspot_tenants ?(machines = 4) ?(rate = 120.) () =
  let name i = Printf.sprintf "t%d-ssh-auth" i in
  let probe =
    List.init 12 (fun i -> tenant (name i) 1.)
  in
  let ring = Router.make_ring (List.init machines Fun.id) in
  let counts = Array.make machines 0 in
  List.iter
    (fun t ->
      let m = Router.lookup ring t in
      counts.(m) <- counts.(m) + 1)
    probe;
  let hot = ref 0 in
  Array.iteri (fun m c -> if c > counts.(!hot) then hot := m) counts;
  let flash =
    Workload.Flash { at = Time.s 1.; width = Time.s 2.; spike = 6. }
  in
  List.map
    (fun t ->
      Workload.tenant ~name:t.Workload.name
        ~shape:
          (if Router.lookup ring t = !hot then flash else Workload.Steady)
        (Workload.Open_loop { rate_per_s = rate /. 12. }))
    probe

let auto_fleet ?(machines = 4) ?(shards = 1) ?(mode = Server.Proposed)
    ?(policy = Autoscale.Auto) ?churn ?(duration = 4.) ?(rate = 120.) () =
  let machine_config =
    match mode with
    | Server.Current | Server.Sfi -> machine_config
    | Server.Proposed -> proposed_config
  in
  let cfg =
    Cluster.config ~shards ~machines ~policy:Router.Hash_tenant ()
  in
  let serve =
    Server.config ~queue_depth:8 ~mode ~duration:(Time.s duration) ()
  in
  let autoscale =
    Autoscale.config ~policy ~interval:(Time.ms 250.) ~hot_threshold:1.8 ()
  in
  match
    Cluster.run ~seed:11L ?churn ~autoscale cfg ~machine_config ~serve
      (hotspot_tenants ~machines ~rate ())
  with
  | Ok fr -> fr
  | Error e -> Alcotest.fail ("autoscale fleet run failed: " ^ e)

let test_autoscale_shard_determinism () =
  (* The load-bearing gate with the controller on: every decision
     happens at an epoch barrier on the main domain, so the shard count
     is invisible — byte-identical renders on 1 and 4 domains, for the
     migrating and spreading backends alike. *)
  List.iter
    (fun (mode, policy) ->
      let a = auto_fleet ~shards:1 ~mode ~policy () in
      let b = auto_fleet ~shards:4 ~mode ~policy () in
      checks
        (Printf.sprintf "autoscale %s/%s shards 1 = 4"
           (Autoscale.policy_name policy)
           (Server.mode_name mode))
        (Fleet_report.render a) (Fleet_report.render b))
    [
      (Server.Proposed, Autoscale.Migrate);
      (Server.Proposed, Autoscale.Spread);
      (Server.Sfi, Autoscale.Auto);
    ];
  (* And composed with churn: barrier order is fixed, so failover plus
     rebalancing still shards invisibly. *)
  let plan =
    Sea_fault.Machine_fault.spec ~mttf:(Time.s 1.5) ~mttr:(Time.s 2.) ~seed:1
      ()
  in
  let churn () = Cluster.churn plan () in
  let a = auto_fleet ~shards:1 ~churn:(churn ()) () in
  let b = auto_fleet ~shards:4 ~churn:(churn ()) () in
  checks "autoscale + churn shards 1 = 4" (Fleet_report.render a)
    (Fleet_report.render b)

let test_autoscale_counters_and_render () =
  (* Proposed + migrate: the hot spot exists by construction, so the
     controller must tick, detect, resize and move warm. *)
  let fr = auto_fleet ~policy:Autoscale.Migrate () in
  let a =
    match fr.Fleet_report.autoscale with
    | Some a -> a
    | None -> Alcotest.fail "autoscale stats missing"
  in
  checkb "ticks fired" true (a.Fleet_report.ticks > 0);
  checkb "hot spot detected" true (a.Fleet_report.hot_events > 0);
  checkb "ring resized" true (a.Fleet_report.resizes > 0);
  checkb "tenants moved" true (a.Fleet_report.tenants_moved > 0);
  checkb "migrate policy moves warm, never respawns" true
    (a.Fleet_report.warm_moves > 0 && a.Fleet_report.respawns = 0);
  (* No churn in this run, so every ring move executes: exactly one PAL
     move per moved tenant (single-kind mixes). *)
  checki "every ring move is exactly one PAL move"
    a.Fleet_report.tenants_moved
    (a.Fleet_report.warm_moves + a.Fleet_report.cold_moves
   + a.Fleet_report.respawns);
  let render = Fleet_report.render fr in
  checkb "autoscale line renders" true (contains_sub render "autoscale:");
  checkb "rebalance line renders" true (contains_sub render "rebalance:");
  checkb "policy named" true (contains_sub render "policy migrate");
  (* SFI + auto: software isolation has no sePCR state to ship, so auto
     degrades every move to a 25 us respawn. *)
  let fr = auto_fleet ~mode:Server.Sfi ~policy:Autoscale.Auto () in
  let a = Option.get fr.Fleet_report.autoscale in
  checkb "sfi auto respawns, never migrates" true
    (a.Fleet_report.respawns > 0 && a.Fleet_report.warm_moves = 0);
  (* Static: samples and reports, but the ring never changes. *)
  let fr = auto_fleet ~policy:Autoscale.Static () in
  let a = Option.get fr.Fleet_report.autoscale in
  checkb "static detects but never acts" true
    (a.Fleet_report.hot_events > 0
    && a.Fleet_report.resizes = 0
    && a.Fleet_report.tenants_moved = 0);
  (* No controller, no lines. *)
  let plain = run_fleet_exn ~seed:11L () in
  checkb "no autoscale lines without a controller" true
    (not (contains_sub (Fleet_report.render plain) "autoscale:"))

let test_autoscale_crash_race () =
  (* Satellite property, swept across the fault-seed band (widened via
     SEA_FAULT_SEEDS in the CI fault soak): autoscale rebalancing
     racing machine crashes must keep the books exact — the merged
     fleet row satisfies offered = completed + shed + timed_out +
     failed with black-holed requests folded in — and every executed
     move is accounted exactly once (a tenant's resident PALs are warm-
     migrated, cold-restarted or respawned, never double-counted and
     never lost in between). *)
  List.iter
    (fun seed ->
      let plan =
        Sea_fault.Machine_fault.spec ~mttf:(Time.s 1.) ~mttr:(Time.s 1.5)
          ~seed ()
      in
      let fr = auto_fleet ~churn:(Cluster.churn plan ()) () in
      let f = fr.Fleet_report.fleet in
      let ctx = Printf.sprintf "seed %d" seed in
      checki
        (ctx ^ ": offered = completed + shed + timed_out + failed")
        f.Report.offered
        (f.Report.completed + f.Report.shed + f.Report.timed_out
       + f.Report.failed);
      let a = Option.get fr.Fleet_report.autoscale in
      let moves =
        a.Fleet_report.warm_moves + a.Fleet_report.cold_moves
        + a.Fleet_report.respawns
      in
      (* Single-kind mixes: a re-homed tenant carries exactly one
         resident PAL, so a PAL is never moved twice for one ring move
         — and a move whose source or target was down or dead is
         skipped entirely (the failover path owns those residents),
         never half-executed. *)
      checkb
        (Printf.sprintf "%s: PAL moves (%d) never exceed ring moves (%d)"
           ctx moves a.Fleet_report.tenants_moved)
        true
        (moves <= a.Fleet_report.tenants_moved);
      (* The same run is still deterministic under the race. *)
      let fr' = auto_fleet ~churn:(Cluster.churn plan ()) () in
      checks (ctx ^ ": race is deterministic") (Fleet_report.render fr)
        (Fleet_report.render fr'))
    churn_seeds

let test_autoscale_validation () =
  let serve =
    Server.config ~queue_depth:8 ~mode:Server.Proposed ~duration:(Time.s 1.)
      ()
  in
  let autoscale = Autoscale.config () in
  let tenants = Workload.preset ~tenants:4 (`Open 8.) in
  (* Autoscaling needs the consistent-hash ring. *)
  (match
     Cluster.run ~autoscale
       (Cluster.config ~machines:4 ())
       ~machine_config:proposed_config ~serve tenants
   with
  | Ok _ -> Alcotest.fail "autoscale without hash routing must be rejected"
  | Error e -> checkb "error names hash routing" true (contains_sub e "hash"));
  (* ...and someone to rebalance onto. *)
  (match
     Cluster.run ~autoscale
       (Cluster.config ~machines:1 ~policy:Router.Hash_tenant ())
       ~machine_config:proposed_config ~serve tenants
   with
  | Ok _ -> Alcotest.fail "single-machine autoscale must be rejected"
  | Error e ->
      checkb "error names the machine requirement" true
        (contains_sub e "at least 2 machines"));
  Alcotest.check_raises "interval must be positive"
    (Invalid_argument "Autoscale.config: --scale-interval must be positive")
    (fun () -> ignore (Autoscale.config ~interval:Time.zero ()));
  Alcotest.check_raises "hot threshold must exceed 1"
    (Invalid_argument "Autoscale.config: --hot-threshold must exceed 1")
    (fun () -> ignore (Autoscale.config ~hot_threshold:1. ()))

let () =
  Alcotest.run "cluster"
    [
      ( "router",
        [
          Alcotest.test_case "round-robin" `Quick test_router_round_robin;
          Alcotest.test_case "hash by name" `Quick test_router_hash_by_name;
          Alcotest.test_case "least-loaded" `Quick test_router_least_loaded;
          Alcotest.test_case "cost-weighted" `Quick test_router_cost_weighted;
          Alcotest.test_case "rejects zero machines" `Quick
            test_router_rejects_no_machines;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "shards 1 = shards 4 (all modes)" `Quick
            test_shard_determinism;
          Alcotest.test_case "shard-independent fault schedules" `Quick
            test_shard_determinism_with_faults;
          Alcotest.test_case "cost-aware pair shard-independent" `Quick
            test_cost_shard_determinism;
          Alcotest.test_case "repeatable and seed-sensitive" `Quick
            test_repeatable_and_seed_sensitive;
          Alcotest.test_case "machine seeds independent of fleet size" `Quick
            test_machine_seed_independence;
        ] );
      ( "merge",
        [
          Alcotest.test_case "count invariants" `Quick test_merge_invariants;
          Alcotest.test_case "idle machines" `Quick test_idle_machines_render;
        ] );
      ( "validation",
        [
          Alcotest.test_case "config bounds" `Quick test_config_validation;
          Alcotest.test_case "empty tenants and preset retry" `Quick
            test_run_rejects_empty_and_retry;
        ] );
      ( "churn",
        [
          Alcotest.test_case "churn shards 1 = 3 (all modes)" `Quick
            test_churn_shard_determinism;
          Alcotest.test_case "quiet plan reproduces the plain render" `Quick
            test_churn_quiet_plan_prefix;
          Alcotest.test_case "counters and recovered goodput" `Quick
            test_churn_counters_and_recovery;
          Alcotest.test_case "failover beats failing in place" `Quick
            test_failover_beats_fail_in_place;
          Alcotest.test_case "down machine renders n/a" `Quick
            test_down_machine_renders_na;
          Alcotest.test_case "migration atomicity across seeds and loss"
            `Quick test_migration_atomicity;
          Alcotest.test_case "tracing is observer-only" `Quick
            test_churn_trace_gated;
          Alcotest.test_case "churn validation" `Quick test_churn_validation;
        ] );
      ( "autoscale",
        [
          Alcotest.test_case "decide: thresholds and hysteresis" `Quick
            test_autoscale_decide;
          Alcotest.test_case "ring resize stability (<= 2/N)" `Quick
            test_ring_resize_stability;
          Alcotest.test_case "autoscale shards 1 = 4 (with churn)" `Quick
            test_autoscale_shard_determinism;
          Alcotest.test_case "counters and render" `Quick
            test_autoscale_counters_and_render;
          Alcotest.test_case "rebalance racing crashes across seeds" `Quick
            test_autoscale_crash_race;
          Alcotest.test_case "autoscale validation" `Quick
            test_autoscale_validation;
        ] );
    ]
