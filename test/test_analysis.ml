(* Static-analyzer tests: the three TOCTOU gates get the verdicts the
   analyzer was built for, every shipped PALVM image is clean (and still
   runs), adversarial images trip their rules, and the launch-path gate
   refuses a bad image BEFORE the TPM measures anything. *)

open Sea_core
open Sea_palvm
open Sea_analysis

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let ok = function Ok x -> x | Error e -> Alcotest.fail e
let expect_error = function Error _ -> () | Ok _ -> Alcotest.fail "expected error"

let has_rule report rule =
  List.exists (fun f -> f.Finding.rule = rule) report.Report.findings

let find_rule report rule =
  match List.find_opt (fun f -> f.Finding.rule = rule) report.Report.findings with
  | Some f -> f
  | None -> Alcotest.fail ("finding not present: " ^ rule)

(* Null services (same shape as test_palvm's). *)
let null_services =
  {
    Pal.seal = (fun s -> Ok ("SEALED:" ^ s));
    unseal =
      (fun s ->
        if String.length s > 7 && String.sub s 0 7 = "SEALED:" then
          Ok (String.sub s 7 (String.length s - 7))
        else Error "bad blob");
    get_random = (fun n -> String.make n 'r');
    extend_measurement = (fun _ -> ());
    machine_name = "null";
  }

(* --- the three TOCTOU gates --- *)

let test_vulnerable_gate_rejected () =
  let r = Analyzer.analyze (Toctou.vulnerable_gate ()).Pal.code in
  checkb "not clean" false (Report.is_clean r);
  let f = find_rule r "toctou/input-overwrites-code" in
  checkb "error severity" true (f.Finding.severity = Finding.Error);
  (* The flagged instruction is the SVC INPUT_READ itself. *)
  checki "flagged at the INPUT_READ" 0 (f.Finding.offset mod Isa.insn_size)

let test_hardened_gate_clean () =
  let r = Analyzer.analyze (Toctou.hardened_gate ()).Pal.code in
  checkb "clean" true (Report.is_clean r);
  checki "no warnings either" 0 (List.length (Report.warnings r));
  checks "verdict" "PASS" (Report.verdict r)

let test_measured_gate_mitigated () =
  let r = Analyzer.analyze (Toctou.measured_gate ()).Pal.code in
  checkb "clean (launchable)" true (Report.is_clean r);
  let f = find_rule r "toctou/input-overwrites-code-mitigated" in
  checkb "downgraded to warn" true (f.Finding.severity = Finding.Warn);
  checkb "no un-mitigated finding" false (has_rule r "toctou/input-overwrites-code")

(* --- shipped corpus: clean under analysis AND still runs --- *)

let test_samples_clean_and_run () =
  List.iter
    (fun (name, code) ->
      let r = Analyzer.analyze code in
      checkb (name ^ " clean") true (Report.is_clean r);
      let o =
        ok (Vm.run ~code ~services:null_services ~input:"sixteen byte in." ())
      in
      checkb (name ^ " produced output") true (String.length o.Vm.output > 0))
    Samples.all

let test_sample_semantics () =
  (* xor_checksum really is a loop, and the analyzer saw it — and since
     the counter pattern is recognizable, it now carries a provable trip
     bound rather than resting on the fuel ceiling. *)
  let r = Analyzer.analyze Samples.xor_checksum in
  checki "one back-edge" 1 r.Report.loops;
  checkb "trip count provable" true (has_rule r "bounds/loop-bound");
  checkb "not fuel-bounded" false (has_rule r "bounds/back-edge");
  let o =
    ok
      (Vm.run ~code:Samples.xor_checksum ~services:null_services ~input:"\x01\x02\x04" ())
  in
  (* 1 xor 2 xor 4 = 7, emitted as a 32-bit big-endian word. *)
  checks "checksum" "\x00\x00\x00\x07" o.Vm.output

(* --- adversarial images --- *)

let analyze_ops ?policy ops = Analyzer.analyze ?policy (Isa.encode_program ops)

let test_bad_jump_targets () =
  let r = analyze_ops Isa.[ Jmp 999_999 ] in
  checkb "out of image" true (has_rule r "cfg/jump-out-of-image");
  checkb "rejected" false (Report.is_clean r);
  let r = analyze_ops Isa.[ Loadi (0, 1); Jmp 4 ] in
  checkb "off grid" true (has_rule r "cfg/jump-off-grid");
  checkb "rejected" false (Report.is_clean r)

let test_truncated_and_invalid () =
  let r = Analyzer.analyze (String.sub (Isa.encode (Isa.Loadi (0, 1))) 0 5) in
  checkb "truncated tail" true (has_rule r "decode/truncated");
  checkb "rejected" false (Report.is_clean r);
  let r = Analyzer.analyze "\xff\x00\x00\x00\x00\x00\x00\x00" in
  checkb "invalid opcode" true (has_rule r "decode/invalid");
  checkb "rejected" false (Report.is_clean r);
  let r = Analyzer.analyze "" in
  checkb "empty image" true (has_rule r "image/empty")

let test_selfmod_store () =
  (* A store whose concrete address lands inside the measured code. *)
  let r = analyze_ops Isa.[ Loadi (0, 65); Stb (0, 1, 8); Halt ] in
  let f = find_rule r "selfmod/store-overwrites-code" in
  checkb "error" true (f.Finding.severity = Finding.Error);
  (* The same store aimed above the code is fine. *)
  let r = analyze_ops Isa.[ Loadi (0, 65); Stb (0, 1, 4096); Halt ] in
  checkb "clean when clear of code" true (Report.is_clean r)

let test_unsealed_secret_leak () =
  let svc = Isa.Svc Isa.svc_unseal in
  let out = Isa.Svc Isa.svc_output in
  let r =
    analyze_ops
      Isa.
        [
          Loadi (0, 1024) (* blob ptr *); Loadi (1, 64) (* blob len *);
          Loadi (2, 4096) (* plaintext dst *); svc;
          Loadi (0, 4096); Loadi (1, 64); out; Halt;
        ]
  in
  let f = find_rule r "taint/unsealed-secret-to-output" in
  checkb "error" true (f.Finding.severity = Finding.Error);
  checkb "rejected" false (Report.is_clean r)

let test_random_leak_is_warn () =
  let r =
    analyze_ops
      Isa.
        [
          Loadi (0, 4096); Loadi (1, 16); Svc Isa.svc_random;
          Svc Isa.svc_output; Halt;
        ]
  in
  let f = find_rule r "taint/random-to-output" in
  checkb "warn only" true (f.Finding.severity = Finding.Warn);
  checkb "still launchable" true (Report.is_clean r);
  (* random_nonce seals before outputting, so it must NOT fire there. *)
  checkb "sample does not leak" false
    (has_rule (Analyzer.analyze Samples.random_nonce) "taint/random-to-output")

let test_service_whitelist () =
  let policy =
    {
      Analyzer.default_policy with
      Analyzer.allowed_services =
        Some Isa.[ svc_input_len; svc_input_read; svc_output ];
    }
  in
  let r = Analyzer.analyze ~policy Samples.seal_echo in
  checkb "seal forbidden" true (has_rule r "policy/service-forbidden");
  checkb "rejected" false (Report.is_clean r);
  (* The default policy allows it. *)
  checkb "default allows" true (Report.is_clean (Analyzer.analyze Samples.seal_echo))

let test_require_bounded () =
  let policy = { Analyzer.default_policy with Analyzer.require_bounded = true } in
  (* A loop with no recognizable counter has no provable trip count, so
     require_bounded escalates it to an error... *)
  let r = analyze_ops ~policy Isa.[ Loadi (0, 1); Jmp 0 ] in
  let f = find_rule r "bounds/back-edge" in
  checkb "escalated to error" true (f.Finding.severity = Finding.Error);
  checkb "rejected" false (Report.is_clean r);
  (* ...while a provable loop satisfies the policy: xor_checksum's trip
     count is inferred, so it stays launchable even under
     require_bounded. *)
  let r = Analyzer.analyze ~policy Samples.xor_checksum in
  checkb "provable loop passes" true (Report.is_clean r)

(* --- cost certificates and loop bounds --- *)

let certify_ops ?policy ops = Analyzer.certify ?policy (Isa.encode_program ops)

let test_loop_bound_inference () =
  (* xor_checksum: counter r1 steps by 1 from 0 toward r2 <= 4096, so
     the whole image gets a finite wcet strictly tighter than the fuel
     ceiling. The exact number is locked by the golden analyze report;
     here we pin the structural facts. *)
  let _, cert = Analyzer.certify Samples.xor_checksum in
  checkb "bounded" true cert.Certificate.bounded;
  checkb "tighter than fuel" true
    (cert.Certificate.wcet_steps < Isa.default_fuel);
  (* And the bound is sound against a real worst-case-shaped run. *)
  let o =
    ok
      (Vm.run ~code:Samples.xor_checksum ~services:null_services
         ~input:(String.make 4096 'x') ())
  in
  checkb "dynamic steps within static wcet" true
    (o.Vm.steps <= cert.Certificate.wcet_steps)

let test_unprovable_loop_unbounded () =
  (* No counter pattern: the certificate falls back to fuel-ceiling
     pricing and is not bounded. *)
  let _, cert = certify_ops Isa.[ Loadi (0, 1); Jmp 0 ] in
  checkb "unbounded" false cert.Certificate.bounded;
  checki "wcet is the fuel ceiling" Isa.default_fuel cert.Certificate.wcet_steps

let test_dirty_report_unbounded () =
  (* Loop-free but self-modifying: a static text-derived bound is
     meaningless once the program can rewrite its measured bytes, so
     the certificate refuses to claim one. *)
  let _, cert = certify_ops Isa.[ Loadi (0, 65); Stb (0, 1, 8); Halt ] in
  checkb "not bounded despite no loops" false cert.Certificate.bounded

let test_straight_line_agrees_with_certificate () =
  (* Satellite invariant: the bounds/straight-line finding and the
     certificate must quote the same worst-case step count — one cost
     table ([Isa.fuel_cost]) feeds both. *)
  List.iter
    (fun (name, code) ->
      let report, cert = Analyzer.certify code in
      if report.Report.loops = 0 && Report.is_clean report then begin
        let f = find_rule report "bounds/straight-line" in
        let expected =
          Printf.sprintf "worst case %d steps" cert.Certificate.wcet_steps
        in
        let contains needle hay =
          let n = String.length needle and h = String.length hay in
          let rec go i =
            i + n <= h && (String.sub hay i n = needle || go (i + 1))
          in
          go 0
        in
        checkb
          (name ^ ": straight-line quotes the certificate wcet")
          true
          (contains expected f.Finding.message)
      end)
    Samples.all

let test_certificate_render_deterministic () =
  let _, c1 = Analyzer.certify Samples.seal_echo in
  let _, c2 = Analyzer.certify Samples.seal_echo in
  checks "byte-identical renders" (Certificate.render c1)
    (Certificate.render c2);
  checkb "admission cost positive" true (Certificate.admission_cost c1 > 0)

(* --- interval / write_range corners --- *)

let test_interval_edges () =
  let open Interval in
  (* Overflow clamps to the 32-bit ceiling instead of wrapping. *)
  let near = make ~lo:(max32 - 1) ~hi:max32 in
  let sum = add near (const 2) in
  checkb "overflowing add goes top-ish" true (sum.hi = max32);
  (* const masks to 32 bits. *)
  checki "const masked" 0 (const 0x1_0000_0000).lo;
  (* Widening is stable: once widened, re-widening the result against
     any larger-in-the-same-direction value is a fixpoint jump, not a
     creep. *)
  let w = widen (make ~lo:0 ~hi:10) (make ~lo:0 ~hi:11) in
  checki "grew hi jumps to max32" max32 w.hi;
  let w2 = widen w (make ~lo:0 ~hi:(max32 - 5)) in
  checkb "idempotent after the jump" true (equal w w2);
  (* join is the convex hull. *)
  let j = join (make ~lo:2 ~hi:3) (make ~lo:10 ~hi:12) in
  checkb "hull" true (j.lo = 2 && j.hi = 12)

let test_write_range_corners () =
  let mem = Isa.default_mem_size in
  (* Certainly-zero length: no write at all. *)
  checkb "zero length is None" true
    (Dataflow.write_range ~mem_size:mem ~ptr:(Interval.const 100)
       ~len:(Interval.const 0)
    = None);
  (* Pointer straddling the end of memory: clamped to memory, never
     past it. *)
  (match
     Dataflow.write_range ~mem_size:mem
       ~ptr:(Interval.make ~lo:(mem - 4) ~hi:(mem + 100))
       ~len:(Interval.const 64)
   with
  | None -> Alcotest.fail "straddling write should be Some"
  | Some (lo, hi) ->
      checki "clamped to memory end" mem hi;
      checki "starts at the pointer" (mem - 4) lo);
  (* Wholly past the end: clamps to an empty-at-the-boundary span or
     None — either way it must not extend past memory. *)
  (match
     Dataflow.write_range ~mem_size:mem
       ~ptr:(Interval.const (mem + 10))
       ~len:(Interval.const 4)
   with
  | None -> ()
  | Some (_, hi) -> checkb "never past memory" true (hi <= mem))

(* --- the launch gate --- *)

let test_enforce_refuses_before_measurement () =
  let m = Sea_hw.Machine.create Sea_hw.Machine.hp_dc5750 in
  let tpm = Sea_hw.Machine.tpm_exn m in
  let pcr17_before = Sea_tpm.Tpm.pcr_read tpm 17 in
  expect_error
    (Session.execute m ~cpu:0 ~analyze:Analyzer.Enforce
       (Toctou.vulnerable_gate ()) ~input:Toctou.exploit_input);
  (* Refused before SKINIT: the dynamic-launch PCR never moved. *)
  checks "PCR 17 untouched" pcr17_before (Sea_tpm.Tpm.pcr_read tpm 17)

let test_enforce_admits_hardened () =
  let m = Sea_hw.Machine.create Sea_hw.Machine.hp_dc5750 in
  let o =
    ok
      (Session.execute m ~cpu:0 ~analyze:Analyzer.Enforce
         (Toctou.hardened_gate ()) ~input:Toctou.exploit_input)
  in
  checks "exploit denied at runtime too" "denied" o.Session.output

let test_warnonly_reports_but_runs () =
  let m = Sea_hw.Machine.create Sea_hw.Machine.hp_dc5750 in
  let seen = ref None in
  let o =
    ok
      (Session.execute m ~cpu:0 ~analyze:Analyzer.WarnOnly
         ~on_report:(fun r -> seen := Some r)
         (Toctou.vulnerable_gate ()) ~input:Toctou.benign_input)
  in
  checks "still ran" "denied" o.Session.output;
  match !seen with
  | None -> Alcotest.fail "on_report not called"
  | Some r -> checkb "report has the error" false (Report.is_clean r)

let test_slaunch_gate () =
  let m =
    Sea_hw.Machine.create
      (Sea_hw.Machine.proposed_variant ~sepcr_count:4 Sea_hw.Machine.hp_dc5750)
  in
  expect_error
    (Slaunch_session.start m ~cpu:0 ~analyze:Analyzer.Enforce
       (Toctou.vulnerable_gate ()) ~input:Toctou.exploit_input);
  (* Off (the default) keeps the legacy behaviour: it launches. *)
  ignore
    (ok
       (Slaunch_session.start m ~cpu:0 (Toctou.vulnerable_gate ())
          ~input:Toctou.benign_input))

let test_check_gate_modes () =
  let code = (Toctou.vulnerable_gate ()).Pal.code in
  (match Analyzer.check ~gate:Analyzer.Off code with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Analyzer.check ~gate:Analyzer.WarnOnly code with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  expect_error (Analyzer.check ~gate:Analyzer.Enforce code);
  ok (Analyzer.check ~gate:Analyzer.Enforce (Toctou.hardened_gate ()).Pal.code)

let () =
  Alcotest.run "analysis"
    [
      ( "toctou gates",
        [
          Alcotest.test_case "vulnerable rejected" `Quick
            test_vulnerable_gate_rejected;
          Alcotest.test_case "hardened clean" `Quick test_hardened_gate_clean;
          Alcotest.test_case "measured mitigated" `Quick
            test_measured_gate_mitigated;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "samples clean and runnable" `Quick
            test_samples_clean_and_run;
          Alcotest.test_case "xor-checksum semantics" `Quick
            test_sample_semantics;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "bad jump targets" `Quick test_bad_jump_targets;
          Alcotest.test_case "truncated / invalid / empty" `Quick
            test_truncated_and_invalid;
          Alcotest.test_case "self-modifying store" `Quick test_selfmod_store;
          Alcotest.test_case "unsealed secret leak" `Quick
            test_unsealed_secret_leak;
          Alcotest.test_case "random leak is a warning" `Quick
            test_random_leak_is_warn;
          Alcotest.test_case "service whitelist" `Quick test_service_whitelist;
          Alcotest.test_case "require_bounded" `Quick test_require_bounded;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "loop bound inferred and sound" `Quick
            test_loop_bound_inference;
          Alcotest.test_case "unprovable loop stays unbounded" `Quick
            test_unprovable_loop_unbounded;
          Alcotest.test_case "dirty report voids the bound" `Quick
            test_dirty_report_unbounded;
          Alcotest.test_case "straight-line agrees with certificate" `Quick
            test_straight_line_agrees_with_certificate;
          Alcotest.test_case "deterministic render" `Quick
            test_certificate_render_deterministic;
        ] );
      ( "domains",
        [
          Alcotest.test_case "interval edges" `Quick test_interval_edges;
          Alcotest.test_case "write_range corners" `Quick
            test_write_range_corners;
        ] );
      ( "launch gate",
        [
          Alcotest.test_case "Enforce refuses before measurement" `Quick
            test_enforce_refuses_before_measurement;
          Alcotest.test_case "Enforce admits hardened" `Quick
            test_enforce_admits_hardened;
          Alcotest.test_case "WarnOnly reports but runs" `Quick
            test_warnonly_reports_but_runs;
          Alcotest.test_case "SLAUNCH path gated too" `Quick test_slaunch_gate;
          Alcotest.test_case "check gate modes" `Quick test_check_gate_modes;
        ] );
    ]
