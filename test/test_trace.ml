(* Tests for sea.trace: span semantics (nesting, self vs total time,
   exception safety), Chrome-JSON export determinism, and the zero-cost
   guarantee — a run with no sink installed renders every report
   byte-identically to one that was never instrumented, and a traced run
   does not perturb the simulation either. *)

open Sea_sim
open Sea_trace
open Sea_serve

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let occurrences ~sub s =
  let n = String.length sub and len = String.length s in
  let rec go acc i =
    if i + n > len then acc
    else if String.sub s i n = sub then go (acc + 1) (i + 1)
    else go acc (i + 1)
  in
  go 0 0

(* --- span semantics --- *)

let test_off_is_free () =
  Trace.uninstall ();
  let e = Engine.create ~seed:1L () in
  let evaluated = ref false in
  let r =
    Trace.with_span e ~cat:"t"
      ~args:(fun () ->
        evaluated := true;
        [])
      "noop"
      (fun () -> 42)
  in
  checki "body ran" 42 r;
  checkb "args thunk never evaluated when off" false !evaluated;
  Trace.instant e ~cat:"t" "i";
  Trace.count e "c" 3;
  checkb "no sink appeared" true (Trace.installed () = None)

let test_nesting_and_self_time () =
  let e = Engine.create ~seed:1L () in
  let sink = Trace.create () in
  Trace.with_sink sink (fun () ->
      Trace.with_span e ~cat:"outer" "o" (fun () ->
          Engine.advance e (Time.us 10.);
          Trace.with_span e ~cat:"inner" "i" (fun () ->
              Engine.advance e (Time.us 4.));
          Engine.advance e (Time.us 1.)));
  checki "balanced" 0 (Trace.depth sink);
  let stat cat =
    List.find (fun s -> s.Trace.cat = cat) (Trace.span_stats sink)
  in
  checki "outer total 15us" 15_000 (Time.to_ns (stat "outer").Trace.total);
  checki "outer self 11us" 11_000 (Time.to_ns (stat "outer").Trace.self);
  checki "inner self 4us" 4_000 (Time.to_ns (stat "inner").Trace.self);
  checki "category self" 11_000 (Time.to_ns (Trace.category_self sink "outer"))

let test_exception_closes_span () =
  let e = Engine.create ~seed:1L () in
  let sink = Trace.create () in
  (try
     Trace.with_sink sink (fun () ->
         Trace.with_span e ~cat:"t" "boom" (fun () ->
             Engine.advance e (Time.us 1.);
             failwith "inside"))
   with Failure _ -> ());
  checki "span closed on raise" 0 (Trace.depth sink);
  checkb "span still recorded" true
    (List.exists (fun s -> s.Trace.name = "boom") (Trace.span_stats sink))

let test_counters_accumulate () =
  let e = Engine.create ~seed:1L () in
  let sink = Trace.create () in
  Trace.with_sink sink (fun () ->
      Trace.count e "bytes" 10;
      Trace.count e "bytes" 5);
  checki "running total" 15 (Trace.counter sink "bytes");
  checki "unknown counter is 0" 0 (Trace.counter sink "nope")

let test_export_shape () =
  let e = Engine.create ~seed:1L () in
  let sink = Trace.create () in
  Trace.with_sink sink (fun () ->
      Trace.with_span e ~cat:"t" "s" (fun () -> Engine.advance e (Time.us 2.));
      Trace.instant e ~cat:"t" "mark";
      Trace.complete e ~cat:"t" ~start:Time.zero ~stop:(Time.us 1.) "retro");
  let json = Trace.export_json sink in
  checkb "has traceEvents" true (String.length json > 0);
  checkb "names the event array" true (occurrences ~sub:"\"traceEvents\"" json = 1);
  checkb "has a begin" true (occurrences ~sub:"\"ph\":\"B\"" json >= 1);
  checkb "has an instant" true (occurrences ~sub:"\"ph\":\"i\"" json = 1);
  checkb "has a complete" true (occurrences ~sub:"\"ph\":\"X\"" json = 1)

(* --- serving runs: determinism, bit-identity, balance under faults --- *)

let machine ?(seed = 11L) proposed =
  let config = Sea_hw.Machine.low_fidelity Sea_hw.Machine.hp_dc5750 in
  let config =
    if proposed then Sea_hw.Machine.proposed_variant config else config
  in
  Sea_hw.Machine.create ~engine:(Engine.create ~seed ()) config

let serve ?faults mode =
  let proposed_hw =
    match mode with
    | Server.Proposed -> true
    | Server.Current | Server.Sfi -> false
  in
  let m = machine proposed_hw in
  let cfg = Server.config ?faults ~mode ~duration:(Time.s 1.) () in
  match Server.run m cfg (Workload.preset ~tenants:3 (`Open 12.)) with
  | Ok r -> r
  | Error e -> Alcotest.fail ("serve: " ^ e)

let test_traced_serve_deterministic () =
  List.iter
    (fun mode ->
      let go () =
        let sink = Trace.create () in
        let r = Trace.with_sink sink (fun () -> serve mode) in
        (Trace.export_json sink, Report.render r)
      in
      let j1, r1 = go () and j2, r2 = go () in
      checkb "trace has events" true (String.length j1 > 100);
      checks "same seed, byte-identical export" j1 j2;
      checks "same seed, byte-identical report" r1 r2)
    [ Server.Current; Server.Proposed ]

let test_tracing_does_not_perturb () =
  List.iter
    (fun mode ->
      let plain = Report.render (serve mode) in
      let sink = Trace.create () in
      let traced =
        Report.render (Trace.with_sink sink (fun () -> serve mode))
      in
      checks "tracing on does not change the report" plain traced;
      Trace.uninstall ();
      let off = Report.render (serve mode) in
      checks "no sink: bit-identical to baseline" plain off)
    [ Server.Current; Server.Proposed ]

let test_balance_under_faults () =
  (* Faults make traced operations raise / fail mid-span (hash aborts,
     seal failures, resident recovery): the stream must still balance. *)
  let sink = Trace.create () in
  let r =
    Trace.with_sink sink (fun () ->
        serve ~faults:(Sea_fault.Fault.spec ~seed:7 ~rate:0.1 ())
          Server.Proposed)
  in
  checki "all spans closed" 0 (Trace.depth sink);
  checkb "events recorded" true (Trace.events sink > 0);
  checkb "fault instants present" true
    (Trace.counter sink "serve.completed" > 0
    || r.Report.aggregate.Report.offered > 0);
  (* The B/E streams in the export pair up exactly. *)
  let json = Trace.export_json sink in
  checki "every B has its E"
    (occurrences ~sub:"\"ph\":\"B\"" json)
    (occurrences ~sub:"\"ph\":\"E\"" json)

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "off is free" `Quick test_off_is_free;
          Alcotest.test_case "nesting and self time" `Quick
            test_nesting_and_self_time;
          Alcotest.test_case "exception closes span" `Quick
            test_exception_closes_span;
          Alcotest.test_case "counters accumulate" `Quick
            test_counters_accumulate;
          Alcotest.test_case "export shape" `Quick test_export_shape;
        ] );
      ( "serving",
        [
          Alcotest.test_case "traced serve deterministic" `Quick
            test_traced_serve_deterministic;
          Alcotest.test_case "tracing does not perturb" `Quick
            test_tracing_does_not_perturb;
          Alcotest.test_case "balance under faults" `Quick
            test_balance_under_faults;
        ] );
    ]
