(* sea-cli: command-line driver for the simulated minimal-TCB platform.

   Subcommands:
     machines    list the modelled platforms
     session     run a PAL in a Flicker-style session and show the breakdown
     attest      run the full remote-attestation protocol
     lifecycle   walk the SLAUNCH lifecycle (Figure 6) with timings
     attack      mount the §3.2 threat-model attacks and report verdicts
     boot        measured (trusted) boot and its whole-stack verifier
     toctou      footnote 3's load-time-attestation TOCTOU on real bytecode
     analyze     run the PAL bytecode static analyzer over shipped images
     serve       multi-tenant request serving under load, with tail latencies *)

open Cmdliner
open Sea_sim
open Sea_hw
open Sea_core

(* --- shared options --- *)

let machine_presets =
  [
    ("dc5750", Machine.hp_dc5750);
    ("tyan", Machine.tyan_n3600r);
    ("tep", Machine.intel_tep);
    ("t60", Machine.lenovo_t60);
    ("infineon", Machine.amd_infineon);
  ]

let machine_arg =
  let doc =
    "Machine preset: " ^ String.concat ", " (List.map fst machine_presets) ^ "."
  in
  Arg.(
    value
    & opt (enum machine_presets) Machine.hp_dc5750
    & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let proposed_arg =
  let doc = "Equip the machine with the paper's proposed hardware (§5)." in
  Arg.(value & flag & info [ "proposed" ] ~doc)

let make_machine config proposed =
  Machine.create (if proposed then Machine.proposed_variant config else config)

let pal_presets =
  [
    ("gen", `Gen);
    ("use", `Use);
    ("ca", `Ca);
    ("ssh", `Ssh);
    ("rootkit", `Rootkit);
    ("factor", `Factor);
  ]

let or_die = function
  | Ok x -> x
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1

(* --- machines --- *)

let machines_cmd =
  let run () =
    Printf.printf "%-10s %-30s %-6s %-8s %-10s %s\n" "NAME" "MODEL" "ARCH" "CORES"
      "CPU" "TPM";
    List.iter
      (fun (name, c) ->
        Printf.printf "%-10s %-30s %-6s %-8d %-10s %s\n" name c.Machine.name
          (match c.Machine.arch with Machine.Amd -> "AMD" | Machine.Intel -> "Intel")
          c.Machine.cpu_count
          (Printf.sprintf "%.2fGHz" c.Machine.cpu_ghz)
          (match c.Machine.tpm_vendor with
          | Some v -> Sea_tpm.Vendor.name v
          | None -> "none"))
      machine_presets;
    Printf.printf
      "\nAdd --proposed to any command to equip the machine with SLAUNCH,\n\
       the access-control table and a sePCR bank.\n"
  in
  Cmd.v (Cmd.info "machines" ~doc:"List the modelled platforms")
    Term.(const run $ const ())

(* --- session --- *)

let run_session machine_config proposed which =
  let m = make_machine machine_config proposed in
  Printf.printf "Machine: %s\n" m.Machine.config.Machine.name;
  let show name (b : Session.breakdown) output =
    Printf.printf
      "%s: late launch %s | seal %s | unseal %s | total overhead %s\n" name
      (Time.to_string b.Session.late_launch)
      (Time.to_string b.Session.seal)
      (Time.to_string b.Session.unseal)
      (Time.to_string (Session.overhead b));
    Printf.printf "output: %d bytes\n" (String.length output)
  in
  match which with
  | `Gen ->
      let o = or_die (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"") in
      show "PAL Gen" o.Session.breakdown o.Session.output
  | `Use ->
      let g = or_die (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"") in
      let o =
        or_die (Session.execute m ~cpu:0 (Generic.pal_use ()) ~input:g.Session.output)
      in
      show "PAL Use" o.Session.breakdown o.Session.output
  | `Ca ->
      let ca = or_die (Sea_apps.Cert_authority.init m ~cpu:0 ()) in
      let cert = or_die (Sea_apps.Cert_authority.sign_csr m ~cpu:0 ca ~csr:"CN=cli") in
      Printf.printf "CA initialized and issued a certificate (%d bytes); verifies: %b\n"
        (String.length cert)
        (Sea_apps.Cert_authority.verify_certificate ca ~csr:"CN=cli" ~signature:cert)
  | `Ssh ->
      let acct =
        or_die (Sea_apps.Ssh_password.setup m ~cpu:0 ~user:"cli" ~password:"pw")
      in
      Printf.printf "right password: %b; wrong password: %b\n"
        (or_die (Sea_apps.Ssh_password.authenticate m ~cpu:0 acct ~password:"pw"))
        (or_die (Sea_apps.Ssh_password.authenticate m ~cpu:0 acct ~password:"no"))
  | `Rootkit ->
      let img = Sea_apps.Rootkit_detector.make_kernel_image ~seed:"cli" () in
      let wl = Sea_apps.Rootkit_detector.whitelist_digest img in
      Printf.printf "clean image: %b; infected image clean: %b\n"
        (or_die (Sea_apps.Rootkit_detector.check m ~cpu:0 ~whitelist:wl ~kernel_image:img))
        (or_die
           (Sea_apps.Rootkit_detector.check m ~cpu:0 ~whitelist:wl
              ~kernel_image:(Sea_apps.Rootkit_detector.infect img ~at:7)))
  | `Factor ->
      let fs, sessions =
        or_die (Sea_apps.Factoring.run_to_completion m ~cpu:0 ~n:(101 * 103 * 107) ~range:30 ())
      in
      Printf.printf "factored into %s over %d sealed-state sessions (%s simulated)\n"
        (String.concat "*" (List.map string_of_int fs))
        sessions
        (Time.to_string (Machine.now m))

let session_cmd =
  let pal_arg =
    let doc = "PAL to run: " ^ String.concat ", " (List.map fst pal_presets) ^ "." in
    Arg.(value & opt (enum pal_presets) `Gen & info [ "p"; "pal" ] ~docv:"PAL" ~doc)
  in
  Cmd.v
    (Cmd.info "session" ~doc:"Run a PAL in a Flicker-style SEA session")
    Term.(const run_session $ machine_arg $ proposed_arg $ pal_arg)

(* --- attest --- *)

let run_attest machine_config proposed =
  let m = make_machine machine_config proposed in
  let nonce = "cli-nonce" in
  if proposed then begin
    let pal =
      Pal.create ~name:"cli-attested" ~code_size:8192 ~compute_time:(Time.ms 5.)
        (fun services _ -> services.Pal.seal "s")
    in
    let s = or_die (Slaunch_session.start m ~cpu:0 pal ~input:"") in
    (match or_die (Slaunch_session.run_slice s ~cpu:0 ()) with
    | `Finished -> ()
    | `Yielded -> prerr_endline "unexpected yield");
    let q, t = or_die (Slaunch_session.quote_after_exit s ~nonce) in
    Printf.printf "sePCR quote in %s\n" (Time.to_string t);
    (match
       Attestation.verify
         ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
         ~nonce
         (Attestation.expect_slaunch_exit pal)
         (Attestation.gather m q)
     with
    | Ok () -> print_endline "verifier: ACCEPTED (SLAUNCH execution attested)"
    | Error e -> Printf.printf "verifier: REJECTED (%s)\n" e);
    Slaunch_session.release s
  end
  else begin
    let pal = Generic.pal_gen () in
    ignore (or_die (Session.execute m ~cpu:0 pal ~input:""));
    let q, t = or_die (Session.quote m ~nonce) in
    Printf.printf "TPM quote in %s\n" (Time.to_string t);
    match
      Attestation.verify
        ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
        ~nonce
        (Attestation.expect_session_exit m pal)
        (Attestation.gather m q)
    with
    | Ok () -> print_endline "verifier: ACCEPTED (late launch attested)"
    | Error e -> Printf.printf "verifier: REJECTED (%s)\n" e
  end

let attest_cmd =
  Cmd.v
    (Cmd.info "attest" ~doc:"Run the remote-attestation protocol end to end")
    Term.(const run_attest $ machine_arg $ proposed_arg)

(* --- lifecycle --- *)

let run_lifecycle machine_config =
  let m = Machine.create (Machine.proposed_variant machine_config) in
  let pal =
    Pal.create ~name:"cli-lifecycle" ~code_size:16384 ~compute_time:(Time.ms 22.)
      (fun services _ -> services.Pal.seal "state")
  in
  let stamp label s =
    Printf.printf "%-34s state=%-8s t=%s\n" label
      (Lifecycle.to_string (Slaunch_session.state s))
      (Time.to_string (Machine.now m))
  in
  let s =
    or_die (Slaunch_session.start m ~cpu:0 ~preemption_timer:(Time.ms 10.) pal ~input:"")
  in
  stamp "SLAUNCH (protect+measure+execute)" s;
  let rec drive cpu =
    match or_die (Slaunch_session.run_slice s ~cpu ()) with
    | `Finished -> stamp "work complete; SFREE" s
    | `Yielded ->
        stamp "preemption timer; SYIELD" s;
        let cpu = 1 - cpu in
        or_die (Slaunch_session.resume s ~cpu);
        stamp (Printf.sprintf "SLAUNCH resume on CPU %d" cpu) s;
        drive cpu
  in
  drive 0;
  let q, _ = or_die (Slaunch_session.quote_after_exit s ~nonce:"lc") in
  stamp "sePCR quoted by untrusted code" s;
  ignore q;
  Slaunch_session.release s;
  stamp "pages returned to the OS" s

let lifecycle_cmd =
  Cmd.v
    (Cmd.info "lifecycle" ~doc:"Walk the Figure 6 PAL lifecycle with timings")
    Term.(const run_lifecycle $ machine_arg)

(* --- attack --- *)

let run_attacks machine_config =
  let open Sea_os.Adversary in
  let print name verdict =
    match verdict with
    | Blocked how -> Printf.printf "  %-34s BLOCKED by %s\n" name how
    | Succeeded what -> Printf.printf "  %-34s !!! SUCCEEDED: %s\n" name what
  in
  Printf.printf "Threat model of §3.2 against %s + proposed hardware:\n"
    machine_config.Machine.name;
  let m = Machine.create (Machine.low_fidelity (Machine.proposed_variant machine_config)) in
  let pal =
    Pal.create ~name:"victim" ~code_size:8192 ~compute_time:(Time.ms 10.)
      (fun services _ -> services.Pal.seal "secret")
  in
  let s =
    or_die (Slaunch_session.start m ~cpu:0 ~preemption_timer:(Time.ms 2.) pal ~input:"")
  in
  let page = List.nth (Slaunch_session.secb s).Secb.pages 1 in
  print "DMA read of PAL page" (dma_read_protected_page m ~device:"nic" ~page);
  print "cross-CPU read of PAL page" (cpu_read_pal_page m ~cpu:1 ~page);
  print "double resume on CPU 1" (double_resume m ~cpu:1 (Slaunch_session.secb s));
  print "SFREE from untrusted code" (sfree_from_outside m ~cpu:1 (Slaunch_session.secb s));
  print "software PCR 17 reset" (software_pcr17_reset m);
  print "foreign sePCR extend"
    (extend_foreign_sepcr m ~cpu:1 (Option.get (Slaunch_session.sepcr_handle s)));
  print "forge Measured Flag"
    (forge_measured_flag m ~cpu:1
       (Pal.create ~name:"forged" ~code_size:4096 (fun _ _ -> Ok "")));
  (* Rollback replay. *)
  let tpm = Machine.tpm_exn m in
  let counter = or_die (Rollback.create_counter tpm) in
  let v1 =
    or_die
      (Rollback.seal tpm ~caller:(Sea_tpm.Tpm.Cpu 0) ~pcr_policy:[] ~counter "v1")
  in
  ignore
    (or_die
       (Rollback.seal tpm ~caller:(Sea_tpm.Tpm.Cpu 0) ~pcr_policy:[] ~counter "v2"));
  print "replay stale sealed state" (replay_stale_sealed_state m ~cpu:0 ~stale_blob:v1);
  (* Cleanup. *)
  (match or_die (Slaunch_session.run_slice s ~cpu:0 ()) with
  | `Yielded -> or_die (Slaunch_session.kill s)
  | `Finished -> ());
  Slaunch_session.release s

let attack_cmd =
  Cmd.v
    (Cmd.info "attack" ~doc:"Mount the threat-model attacks and report verdicts")
    Term.(const run_attacks $ machine_arg)

(* --- boot --- *)

let run_boot machine_config compromised =
  let m = Machine.create (Machine.low_fidelity machine_config) in
  let stack = Sea_os.Boot.standard_stack () in
  let booted =
    if compromised then
      List.map
        (fun c ->
          if c.Sea_os.Boot.name = "kernel" then Sea_os.Boot.compromise c else c)
        stack
    else stack
  in
  let log = or_die (Sea_os.Boot.boot m booted) in
  Printf.printf "Measured boot of %s (%d components):\n"
    m.Machine.config.Machine.name
    (Sea_os.Boot.tcb_entries log);
  List.iter
    (fun e ->
      Printf.printf "  PCR %d <- %s\n" e.Sea_tpm.Event_log.pcr_index
        e.Sea_tpm.Event_log.description)
    (Sea_tpm.Event_log.events log);
  let nonce = "cli-boot" in
  let q = or_die (Sea_os.Boot.attest m ~nonce) in
  let whitelist =
    List.map
      (fun c -> (c.Sea_os.Boot.name, Sea_crypto.Sha1.digest c.Sea_os.Boot.image))
      stack
  in
  match
    Sea_os.Boot.verify
      ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
      ~nonce
      ~log:(Sea_tpm.Event_log.events log)
      ~known_good:whitelist
      (Attestation.gather m q)
  with
  | Ok () -> print_endline "verifier: platform trusted (every component known-good)"
  | Error e -> Printf.printf "verifier: platform NOT trusted — %s\n" e

let boot_cmd =
  let compromised_arg =
    Arg.(value & flag & info [ "compromised" ] ~doc:"Boot a kernel with a rootkit.")
  in
  Cmd.v
    (Cmd.info "boot" ~doc:"Measured (trusted) boot and its whole-stack verifier")
    Term.(const run_boot $ machine_arg $ compromised_arg)

(* --- toctou --- *)

let run_toctou () =
  let open Sea_palvm in
  let run pal input =
    let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
    let o = or_die (Session.execute m ~cpu:0 pal ~input) in
    let q, _ = or_die (Session.quote m ~nonce:"t") in
    (o.Session.output, List.assoc 17 q.Sea_tpm.Tpm.selection)
  in
  let d1, p1 = run (Toctou.vulnerable_gate ()) Toctou.benign_input in
  let d2, p2 = run (Toctou.vulnerable_gate ()) Toctou.exploit_input in
  Printf.printf "vulnerable gate: benign -> %S, exploit -> %S, attestations equal: %b\n"
    d1 d2 (p1 = p2);
  let d3, _ = run (Toctou.hardened_gate ()) Toctou.exploit_input in
  Printf.printf "hardened gate:   exploit -> %S\n" d3;
  let d4, p4 = run (Toctou.measured_gate ()) (Toctou.exploit_for ~prologue_insns:6) in
  let _, p5 = run (Toctou.measured_gate ()) Toctou.benign_input in
  Printf.printf
    "measured gate:   exploit -> %S, but attestation differs from benign: %b\n" d4
    (p4 <> p5)

let toctou_cmd =
  Cmd.v
    (Cmd.info "toctou"
       ~doc:"Footnote 3's load-time-attestation TOCTOU on real bytecode")
    Term.(const run_toctou $ const ())

(* --- analyze --- *)

let analyzable_images () =
  let open Sea_palvm in
  [
    ("toctou-vulnerable", (Toctou.vulnerable_gate ()).Pal.code);
    ("toctou-hardened", (Toctou.hardened_gate ()).Pal.code);
    ("toctou-measured", (Toctou.measured_gate ()).Pal.code);
  ]
  @ Samples.all
  @ List.map
      (fun k ->
        ( "workload-" ^ Sea_serve.Workload.kind_name k,
          (Sea_serve.Workload.pal k).Pal.code ))
      Sea_serve.Workload.kinds

let run_analyze name cost =
  let open Sea_analysis in
  let analyze_one (name, code) =
    if cost then begin
      let report, cert = Analyzer.certify code in
      Printf.printf "%s\n%s\n%s" name (Report.render report)
        (Certificate.render cert);
      Report.is_clean report
    end
    else begin
      let report = Analyzer.analyze code in
      Printf.printf "%s\n%s\n" name (Report.render report);
      Report.is_clean report
    end
  in
  match name with
  | "all" ->
      (* The shipped corpus behind the @analyze build alias: everything
         we ship except the deliberately vulnerable TOCTOU exemplar must
         come back with no error findings. *)
      let shipped =
        List.filter (fun (n, _) -> n <> "toctou-vulnerable") (analyzable_images ())
      in
      let verdicts =
        List.map
          (fun img ->
            let clean = analyze_one img in
            print_newline ();
            clean)
          shipped
      in
      if List.for_all Fun.id verdicts then
        Printf.printf "all %d shipped images are clean\n" (List.length verdicts)
      else exit 1
  | name -> (
      match List.assoc_opt name (analyzable_images ()) with
      | None ->
          (* Same shape and exit code as every other subcommand's
             failure path (or_die), rather than a bespoke exit 2. *)
          or_die
            (Error
               (Printf.sprintf "unknown PAL image %S; known: all, %s" name
                  (String.concat ", " (List.map fst (analyzable_images ())))))
      | Some code -> if not (analyze_one (name, code)) then exit 1)

let analyze_cmd =
  let name_arg =
    let doc =
      "Image to analyze: $(b,all) (every shipped image that must be clean) \
       or one of the named PALVM images (toctou-vulnerable, toctou-hardened, \
       toctou-measured, seal-echo, xor-checksum, random-nonce, hash-input, \
       workload-ssh-auth, workload-ca-sign, workload-kv-update)."
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"PAL" ~doc)
  in
  let cost_arg =
    let doc =
      "Also print each image's static cost certificate: worst-case step \
       count (with provable loop trip bounds), per-service call/byte \
       ceilings, the TPM-time bound and the LPC traffic bound."
    in
    Arg.(value & flag & info [ "cost" ] ~doc)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static analysis of PAL bytecode: CFG + TOCTOU/self-modification, \
          secret-flow taint, bounds and service-policy rules, plus \
          $(b,--cost) certificates. Exits non-zero on error findings.")
    Term.(const run_analyze $ name_arg $ cost_arg)

(* --- soundness --- *)

(* Replay every analyzable bounded image in the PALVM against its own
   cost certificate: retired instructions must stay within wcet_steps
   and the jitter-free TPM time of the calls it actually made within
   tpm_us. A violation means the static analysis under-approximated a
   real execution — a build-breaking soundness bug, not a tuning
   matter. Replays use [Vm.run] directly with metering services (no
   engine, no vendor jitter), so observed TPM time is the reference
   profile's mean — exactly the distribution the certificate bounds. *)
let run_soundness () =
  let open Sea_analysis in
  let profile = Certificate.reference_profile in
  let violations = ref 0 in
  let tighter = ref 0 in
  let check (name, code) =
    let _report, cert = Analyzer.certify code in
    if not cert.Certificate.bounded then
      Printf.printf "%-22s unbounded certificate; replay skipped\n" name
    else begin
      let tpm = ref Time.zero in
      let meter n bytes =
        tpm :=
          Time.add !tpm (Certificate.svc_time profile n ~calls:1 ~bytes)
      in
      let services =
        {
          Pal.seal =
            (fun s ->
              meter Sea_isa.Isa.svc_seal (String.length s);
              Ok s);
          unseal =
            (fun s ->
              meter Sea_isa.Isa.svc_unseal (String.length s);
              Ok s);
          get_random =
            (fun k ->
              meter Sea_isa.Isa.svc_random k;
              String.make k '\x2a');
          extend_measurement =
            (fun s -> meter Sea_isa.Isa.svc_extend (String.length s));
          machine_name = "soundness-replay";
        }
      in
      (* A worst-case-shaped input: long enough to drive every
         input-bounded loop to its widest provable trip count. *)
      let input = String.init 4096 (fun i -> Char.chr (i land 0xff)) in
      match Sea_palvm.Vm.run ~code ~services ~input () with
      | Error e -> or_die (Error (Printf.sprintf "%s: replay failed: %s" name e))
      | Ok o ->
          let tpm_us = Time.to_ns !tpm / 1000 in
          let steps_ok = o.Sea_palvm.Vm.steps <= cert.Certificate.wcet_steps in
          let tpm_ok = tpm_us <= cert.Certificate.tpm_us in
          if cert.Certificate.wcet_steps < Sea_isa.Isa.default_fuel then
            incr tighter;
          Printf.printf
            "%-22s steps %d <= wcet %d: %s   tpm %d us <= bound %d us: %s\n"
            name o.Sea_palvm.Vm.steps cert.Certificate.wcet_steps
            (if steps_ok then "ok" else "VIOLATED")
            tpm_us cert.Certificate.tpm_us
            (if tpm_ok then "ok" else "VIOLATED");
          if not (steps_ok && tpm_ok) then incr violations
    end
  in
  (* The samples corpus plus the serving workload images — every real
     PALVM program the repo ships and certifies. *)
  let images =
    Sea_palvm.Samples.all
    @ List.map
        (fun k ->
          ( "workload-" ^ Sea_serve.Workload.kind_name k,
            (Sea_serve.Workload.pal k).Pal.code ))
        Sea_serve.Workload.kinds
  in
  List.iter check images;
  if !violations > 0 then
    or_die
      (Error
         (Printf.sprintf "%d image(s) exceeded their static bound" !violations));
  if !tighter = 0 then
    or_die
      (Error
         "no bounded image has a wcet below the fuel ceiling — loop-bound \
          inference is not engaging");
  Printf.printf
    "all bounds hold; %d image(s) provably tighter than the %d-step fuel\n"
    !tighter Sea_isa.Isa.default_fuel

let soundness_cmd =
  Cmd.v
    (Cmd.info "soundness"
       ~doc:
         "Replay every bounded shipped PALVM image against its static cost \
          certificate: retired steps and jitter-free TPM time must stay \
          within the certified bounds. Exits non-zero on any violation \
          (an unsound certificate is a build failure).")
    Term.(const run_soundness $ const ())

(* --- serve / cluster shared options --- *)

(* Named manual sections so `serve --help` and `cluster --help` list
   every flag group in one place; shared flags carry the same section in
   both commands. *)
let s_serve = "SERVING OPTIONS"
let s_admission = "ADMISSION OPTIONS"
let s_analysis = "ANALYSIS OPTIONS"
let s_fault = "FAULT INJECTION OPTIONS"
let s_vtpm = "VIRTUAL TPM OPTIONS"
let s_fleet = "FLEET OPTIONS"
let s_churn = "FLEET CHURN OPTIONS"
let s_autoscale = "FLEET AUTOSCALE OPTIONS"

let serve_mode_arg =
  let doc =
    "Isolation backend to serve on: $(b,current) (each request is a full \
     SKINIT session, whole platform stalled), $(b,proposed) (resident \
     suspended PALs on every core, §5) or $(b,sfi) (software-fault-isolated \
     residents, VM-exit-class transitions, no sePCR scarcity)."
  in
  Arg.(value & opt string "current" & info [ "mode" ] ~docv:"MODE" ~docs:s_serve ~doc)

(* Like --analyze/--admission: unknown values exit 1 with the known list
   (a cmdliner enum would exit 124 instead, inconsistently with them). *)
let mode_of_flag s =
  match Sea_serve.Server.mode_of_name s with
  | Some mode -> mode
  | None ->
      or_die
        (Error
           (Printf.sprintf "unknown --mode %S; known: %s" s
              (String.concat ", " Sea_serve.Server.mode_names)))

(* The per-machine hardware configuration serve and cluster share:
   crypto fidelity does not affect timing (latency comes from the
   vendor profile), so serve at small key sizes and keep high request
   rates cheap to simulate; equip the proposed variant when serving in
   proposed mode (current and sfi run on the commodity config);
   optionally override the preset's core count. *)
let serving_machine_config machine_config mode cores =
  let config = Machine.low_fidelity machine_config in
  let config =
    match mode with
    | Sea_serve.Server.Current | Sea_serve.Server.Sfi -> config
    | Sea_serve.Server.Proposed -> Machine.proposed_variant config
  in
  match cores with
  | None -> config
  | Some c ->
      if c <= 0 then or_die (Error "--cores must be positive")
      else { config with Machine.cpu_count = c }

let rate_arg =
  let doc = "Total open-loop arrival rate, requests/second." in
  Arg.(value & opt float 16. & info [ "r"; "rate" ] ~docv:"RATE" ~docs:s_serve ~doc)

let duration_arg =
  let doc = "How long arrivals keep coming, seconds of simulated time." in
  Arg.(value & opt float 5. & info [ "d"; "duration" ] ~docv:"SECONDS" ~docs:s_serve ~doc)

let cores_arg =
  let doc = "Override the preset's core count." in
  Arg.(value & opt (some int) None & info [ "cores" ] ~docv:"N" ~docs:s_serve ~doc)

let depth_arg =
  let doc = "Admission queue depth; arrivals beyond it are shed." in
  Arg.(value & opt int 16 & info [ "depth" ] ~docv:"N" ~docs:s_admission ~doc)

let discipline_arg =
  let doc = "Admission discipline: $(b,fifo) or $(b,weighted)." in
  Arg.(
    value
    & opt
        (enum
           [
             ("fifo", Sea_serve.Admission.Fifo);
             ("weighted", Sea_serve.Admission.Weighted);
           ])
        Sea_serve.Admission.Fifo
    & info [ "discipline" ] ~docv:"DISC" ~docs:s_admission ~doc)

let analyze_gate_arg =
  let doc =
    "Static-analysis launch gate: $(b,off), $(b,warn) (analyze and report, \
     never refuse) or $(b,enforce) (refuse images with error findings \
     before anything is measured). Analysis is cached by image digest, so \
     each distinct image is analyzed once per process."
  in
  Arg.(value & opt string "off" & info [ "analyze" ] ~docv:"GATE" ~docs:s_analysis ~doc)

let admission_cost_arg =
  let doc =
    "Cost-aware admission: $(b,none) (use $(b,--discipline)) or $(b,cost) \
     (per-tenant in-flight budget over the kinds' static certificate \
     costs; cheapest-backlog-first dispatch, replaces $(b,--discipline))."
  in
  Arg.(value & opt string "none" & info [ "admission" ] ~docv:"ADM" ~docs:s_admission ~doc)

let cost_budget_arg =
  let doc =
    "Per-tenant in-flight static-cost budget, in certificate admission-cost \
     units (virtual us), under $(b,--admission cost)."
  in
  Arg.(
    value & opt int 4_000_000 & info [ "cost-budget" ] ~docv:"US" ~docs:s_admission ~doc)

(* The new serve/cluster flags are validated by hand so a bad value
   exits 1 with an error naming the flag, like the other numeric-flag
   failures (a cmdliner enum conversion failure would exit 124). *)
let gate_of_flag s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Sea_analysis.Analyzer.Off
  | "warn" -> Sea_analysis.Analyzer.WarnOnly
  | "enforce" -> Sea_analysis.Analyzer.Enforce
  | other ->
      or_die
        (Error
           (Printf.sprintf "unknown --analyze gate %S; known: off, warn, \
                            enforce" other))

let discipline_of_flags ~discipline ~admission ~cost_budget =
  match String.lowercase_ascii (String.trim admission) with
  | "none" -> discipline
  | "cost" ->
      if cost_budget <= 0 then
        or_die (Error "--cost-budget must be positive");
      Sea_serve.Admission.Cost cost_budget
  | other ->
      or_die
        (Error
           (Printf.sprintf "unknown --admission mode %S; known: none, cost"
              other))

let timer_arg =
  let doc = "Preemption-timer slice budget, ms (proposed mode)." in
  Arg.(value & opt float 10. & info [ "timer" ] ~docv:"MS" ~docs:s_serve ~doc)

let deadline_arg =
  let doc = "Queueing deadline, ms: requests queued longer are dropped." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS" ~docs:s_serve ~doc)

let closed_arg =
  let doc =
    "Closed-loop mode: this many clients per tenant, each waiting for its \
     response before the next request (replaces the open-loop $(b,--rate))."
  in
  Arg.(value & opt (some int) None & info [ "closed" ] ~docv:"CLIENTS" ~docs:s_serve ~doc)

let think_arg =
  let doc = "Mean closed-loop think time, ms." in
  Arg.(value & opt float 0. & info [ "think" ] ~docv:"MS" ~docs:s_serve ~doc)

let seed_arg =
  let doc = "Simulation seed; identical seeds give identical reports." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~docs:s_serve ~doc)

let fault_rate_arg =
  let doc =
    "Probability in [0,1] of injecting a fault at each TPM/LPC injection \
     point during serving (0 disables injection entirely)."
  in
  Arg.(value & opt float 0. & info [ "fault-rate" ] ~docv:"P" ~docs:s_fault ~doc)

let fault_kinds_arg =
  let doc =
    "Comma-separated fault kinds to inject ($(b,all) or any of tpm-busy, \
     lpc-stall, hash-abort, seal-fail, nv-fail)."
  in
  Arg.(value & opt string "all" & info [ "fault-kinds" ] ~docv:"KINDS" ~docs:s_fault ~doc)

let fault_seed_arg =
  let doc =
    "Seed for the fault plan's own stream; identical fault seeds replay \
     the identical fault schedule independently of $(b,--seed)."
  in
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"SEED" ~docs:s_fault ~doc)

let vtpm_arg =
  let doc =
    "Multiplex $(docv) virtual TPMs over each machine's hardware TPM. \
     Tenants are routed tenant mod $(docv); every vTPM state change is \
     anchored into a hardware PCR so quotes chain to the physical root of \
     trust."
  in
  Arg.(value & opt (some int) None & info [ "vtpm" ] ~docv:"N" ~docs:s_vtpm ~doc)

let vtpm_batch_arg =
  let doc =
    "Anchor-pipeline batch size: hardware anchor extends are coalesced \
     into one LPC round-trip per $(docv) state changes. Reports are \
     byte-identical across batch sizes; only the anchor pipeline's \
     virtual-time cost changes."
  in
  Arg.(value & opt int 16 & info [ "vtpm-batch" ] ~docv:"N" ~docs:s_vtpm ~doc)

(* Shared by serve and cluster: both flags follow the exit-1-plus-message
   convention of --rate/--timer rather than raising from Server.config. *)
let validate_vtpm_flags ~vtpm ~vtpm_batch =
  (match vtpm with
  | Some k when k <= 0 -> or_die (Error "--vtpm must be positive")
  | _ -> ());
  if vtpm_batch <= 0 then or_die (Error "--vtpm-batch must be positive")

(* Parse the --fault-kinds / --fault-rate pair shared by serve and
   cluster into an optional fault spec. *)
let fault_spec_of_flags ~fault_rate ~fault_kinds ~fault_seed =
  if fault_rate < 0. || fault_rate > 1. then
    or_die (Error "--fault-rate must be in [0, 1]");
  let kinds =
    match String.lowercase_ascii (String.trim fault_kinds) with
    | "" | "all" -> Sea_fault.Fault.all_kinds
    | s ->
        List.map
          (fun name ->
            let name = String.trim name in
            match Sea_fault.Fault.kind_of_name name with
            | Some k -> k
            | None ->
                or_die
                  (Error
                     (Printf.sprintf "unknown fault kind %S; known: %s" name
                        (String.concat ", "
                           (List.map Sea_fault.Fault.kind_name
                              Sea_fault.Fault.all_kinds)))))
          (String.split_on_char ',' s)
  in
  if fault_rate > 0. then
    Some (Sea_fault.Fault.spec ~kinds ~seed:fault_seed ~rate:fault_rate ())
  else None

let run_serve machine_config mode rate duration_s cores tenants depth
    discipline analyze admission cost_budget timer_ms deadline_ms closed
    think_ms seed fault_rate fault_kinds fault_seed vtpm vtpm_batch trace_file
    trace_summary =
  (* Validate the numeric flags here, with flag names in the messages,
     instead of letting Invalid_argument escape from the library
     constructors. *)
  if rate <= 0. then or_die (Error "--rate must be positive");
  if duration_s <= 0. then or_die (Error "--duration must be positive");
  if timer_ms <= 0. then or_die (Error "--timer must be positive");
  validate_vtpm_flags ~vtpm ~vtpm_batch;
  let mode = mode_of_flag mode in
  let analyze = gate_of_flag analyze in
  let discipline = discipline_of_flags ~discipline ~admission ~cost_budget in
  let faults = fault_spec_of_flags ~fault_rate ~fault_kinds ~fault_seed in
  try
    let config = serving_machine_config machine_config mode cores in
    let m =
      Machine.create ~engine:(Engine.create ~seed:(Int64.of_int seed) ()) config
    in
    let cfg =
      Sea_serve.Server.config ~queue_depth:depth ~discipline ~analyze
        ~preemption_timer:(Time.ms timer_ms) ?faults ?vtpm ~vtpm_batch ~mode
        ~duration:(Time.s duration_s) ()
    in
    let deadline = Option.map Time.ms deadline_ms in
    let process =
      match closed with
      | Some clients -> `Closed (clients, Time.ms think_ms)
      | None -> `Open rate
    in
    let workload = Sea_serve.Workload.preset ?deadline ~tenants process in
    let run () = or_die (Sea_serve.Server.run m cfg workload) in
    let report =
      match (trace_file, trace_summary) with
      | None, false -> run ()
      | _ ->
          let sink = Sea_trace.Trace.create () in
          let report = Sea_trace.Trace.with_sink sink run in
          (match trace_file with
          | None -> ()
          | Some path ->
              let oc = open_out path in
              output_string oc (Sea_trace.Trace.export_json sink);
              close_out oc;
              Printf.eprintf "trace: %d events written to %s\n"
                (Sea_trace.Trace.events sink) path);
          if trace_summary then
            print_endline (Sea_trace.Trace.summary sink);
          report
    in
    print_endline (Sea_serve.Report.render report)
  with Invalid_argument e -> or_die (Error e)

let serve_cmd =
  let tenants_arg =
    let doc = "Number of tenants (single-kind mixes cycling ssh/ca/kv)." in
    Arg.(value & opt int 3 & info [ "tenants" ] ~docv:"N" ~docs:s_serve ~doc)
  in
  let trace_arg =
    let doc =
      "Write a Chrome trace_event JSON trace of the run (virtual-time \
       spans for instructions, TPM commands, LPC transfers and serve \
       requests) to $(docv); load it in Perfetto or chrome://tracing."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~docs:s_serve ~doc)
  in
  let trace_summary_arg =
    let doc =
      "Print a compact trace summary (top spans, per-category self time, \
       counters) after the report."
    in
    Arg.(value & flag & info [ "trace-summary" ] ~docs:s_serve ~doc)
  in
  (* Pin the help-page section order so every flag group reads top to
     bottom in one place: serving, admission, analysis, faults, vTPM. *)
  let man =
    [
      `S s_serve; `S s_admission; `S s_analysis; `S s_fault; `S s_vtpm;
      `S Manpage.s_options;
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~man
       ~doc:
         "Serve a multi-tenant PAL request load and report per-tenant \
          goodput, shed/timeout counts and p50/p95/p99 latency. Compare \
          $(b,--mode current), $(b,--mode proposed) and $(b,--mode sfi) on \
          the same seed to see what each isolation backend buys under \
          load.")
    Term.(
      const run_serve $ machine_arg $ serve_mode_arg $ rate_arg $ duration_arg
      $ cores_arg $ tenants_arg $ depth_arg $ discipline_arg
      $ analyze_gate_arg $ admission_cost_arg $ cost_budget_arg $ timer_arg
      $ deadline_arg $ closed_arg $ think_arg $ seed_arg $ fault_rate_arg
      $ fault_kinds_arg $ fault_seed_arg $ vtpm_arg $ vtpm_batch_arg
      $ trace_arg $ trace_summary_arg)

(* --- cluster --- *)

let cluster_usage =
  "usage: sea-cli cluster --machines N --shards K --policy POLICY\n\
  \       with N >= 1 and 1 <= K <= N; see sea-cli cluster --help"

(* Parse the churn flag group into an optional churn config. Everything
   follows the exit-1-plus-message convention; the fleet-shape check
   (failover needs survivors to fail over to) uses the cluster usage
   string because it is a --machines problem as much as a --failover
   one. *)
let churn_of_flags ~machines ~duration_s ~mttf ~mttr ~partition ~link_loss
    ~failover ~fault_seed =
  let failover_on =
    match String.lowercase_ascii (String.trim failover) with
    | "on" -> true
    | "off" -> false
    | other ->
        or_die
          (Error (Printf.sprintf "--failover must be on or off, not %S" other))
  in
  match mttf with
  | None ->
      if partition <> None then
        or_die (Error "--partition needs --mttf (it seeds the churn plan)");
      if link_loss <> 0. then
        or_die (Error "--link-loss needs --mttf (it seeds the churn plan)");
      None
  | Some mttf_s ->
      if mttf_s <= 0. then or_die (Error "--mttf must be positive");
      if mttr <= 0. then or_die (Error "--mttr must be positive");
      (match partition with
      | Some p when p <= 0. -> or_die (Error "--partition must be positive")
      | Some p when p > duration_s ->
          or_die
            (Error
               (Printf.sprintf
                  "--partition %.3gs exceeds the serving window (--duration \
                   %.3gs)"
                  p duration_s))
      | _ -> ());
      if link_loss < 0. || link_loss >= 1. then
        or_die (Error "--link-loss must be in [0, 1)");
      if failover_on && machines < 2 then begin
        Printf.eprintf
          "error: --failover on needs at least 2 machines (no survivor to \
           fail over to)\n%s\n"
          cluster_usage;
        exit 1
      end;
      let plan =
        Sea_fault.Machine_fault.spec ~mttf:(Time.s mttf_s) ~mttr:(Time.s mttr)
          ?partition:(Option.map Time.s partition)
          ~link_loss ~seed:fault_seed ()
      in
      Some (Sea_cluster.Cluster.churn ~failover:failover_on plan ())

(* Parse the autoscale flag group into an optional controller config.
   [Autoscale.config]'s own validation names the flags, so its
   Invalid_argument messages pass straight through or_die. *)
let autoscale_of_flags ~autoscale ~scale_interval ~hot_threshold =
  match autoscale with
  | None ->
      if scale_interval <> None then
        or_die (Error "--scale-interval needs --autoscale");
      if hot_threshold <> None then
        or_die (Error "--hot-threshold needs --autoscale");
      None
  | Some name ->
      let policy =
        match Sea_cluster.Autoscale.policy_of_name name with
        | Some p -> p
        | None -> (
            match String.lowercase_ascii (String.trim name) with
            | "on" -> Sea_cluster.Autoscale.Auto
            | other ->
                or_die
                  (Error
                     (Printf.sprintf
                        "--autoscale must be static, migrate, spread, auto \
                         or on, not %S"
                        other)))
      in
      let interval = Option.map Time.s scale_interval in
      (try
         Some
           (Sea_cluster.Autoscale.config ~policy ?interval
              ?hot_threshold:hot_threshold ())
       with Invalid_argument e -> or_die (Error e))

(* Map --shape to a workload shape, parameterized off the serving
   window: the diurnal cycle is one full period over the window
   (trough 0.25), the flash crowd a 4x spike over the middle half of
   the second quarter onward — wide enough that a static fleet must eat
   it, narrow enough that the window sees before and after. *)
let shape_of_flag ~duration_s shape =
  match String.lowercase_ascii (String.trim shape) with
  | "steady" -> Sea_serve.Workload.Steady
  | "diurnal" ->
      Sea_serve.Workload.Diurnal
        { period = Time.s duration_s; trough = 0.25 }
  | "flash" ->
      Sea_serve.Workload.Flash
        {
          at = Time.s (duration_s /. 4.);
          width = Time.s (duration_s /. 4.);
          spike = 4.;
        }
  | other ->
      or_die
        (Error
           (Printf.sprintf "--shape must be steady, diurnal or flash, not %S"
              other))

let run_cluster machine_config mode machines shards policy rate duration_s
    cores tenants depth discipline analyze admission cost_budget timer_ms
    deadline_ms closed think_ms seed fault_rate fault_kinds fault_seed vtpm
    vtpm_batch mttf mttr partition link_loss failover autoscale scale_interval
    hot_threshold shape zipf trace_prefix =
  (* Fleet-shape validation first: bad --machines/--shards must exit 1
     with a usage message, never escape as a raised Invalid_argument. *)
  let cfg =
    try Sea_cluster.Cluster.config ~shards ~policy ~machines ()
    with Invalid_argument e ->
      Printf.eprintf "error: %s\n%s\n" e cluster_usage;
      exit 1
  in
  if rate <= 0. then or_die (Error "--rate must be positive");
  if duration_s <= 0. then or_die (Error "--duration must be positive");
  if timer_ms <= 0. then or_die (Error "--timer must be positive");
  validate_vtpm_flags ~vtpm ~vtpm_batch;
  let churn =
    churn_of_flags ~machines ~duration_s ~mttf ~mttr ~partition ~link_loss
      ~failover ~fault_seed
  in
  let autoscale =
    autoscale_of_flags ~autoscale ~scale_interval ~hot_threshold
  in
  let shape = shape_of_flag ~duration_s shape in
  (match zipf with
  | Some a when a <= 0. -> or_die (Error "--zipf must be positive")
  | _ -> ());
  let mode = mode_of_flag mode in
  let analyze = gate_of_flag analyze in
  let discipline = discipline_of_flags ~discipline ~admission ~cost_budget in
  let faults = fault_spec_of_flags ~fault_rate ~fault_kinds ~fault_seed in
  try
    let machine_config = serving_machine_config machine_config mode cores in
    let serve =
      Sea_serve.Server.config ~queue_depth:depth ~discipline ~analyze
        ~preemption_timer:(Time.ms timer_ms) ?faults ?vtpm ~vtpm_batch ~mode
        ~duration:(Time.s duration_s) ()
    in
    let deadline = Option.map Time.ms deadline_ms in
    let process =
      match closed with
      | Some clients -> `Closed (clients, Time.ms think_ms)
      | None -> `Open rate
    in
    let tenants =
      match tenants with Some n -> n | None -> machines * 3
    in
    let popularity =
      match zipf with None -> `Even | Some alpha -> `Zipf alpha
    in
    let workload =
      Sea_serve.Workload.preset ?deadline ~shape ~popularity ~tenants process
    in
    let sinks =
      match trace_prefix with
      | None -> None
      | Some _ -> Some (Array.init machines (fun _ -> Sea_trace.Trace.create ()))
    in
    (* Wall clock and shard count go to stderr only: stdout carries the
       merged report, which CI diffs byte-for-byte across shard counts. *)
    let t0 = Unix.gettimeofday () in
    let result =
      Sea_cluster.Cluster.run ~seed:(Int64.of_int seed)
        ?trace:(Option.map (fun arr i -> arr.(i)) sinks)
        ?churn ?autoscale cfg ~machine_config ~serve workload
    in
    let wall = Unix.gettimeofday () -. t0 in
    let report = or_die result in
    (match (trace_prefix, sinks) with
    | Some prefix, Some arr ->
        Array.iteri
          (fun i sink ->
            if Sea_trace.Trace.events sink > 0 then begin
              let path = Printf.sprintf "%s.machine-%d.json" prefix i in
              let oc = open_out path in
              output_string oc (Sea_trace.Trace.export_json sink);
              close_out oc;
              Printf.eprintf "trace: machine %d: %d events written to %s\n" i
                (Sea_trace.Trace.events sink) path
            end)
          arr
    | _ -> ());
    Printf.eprintf "cluster: %d machines on %d shard%s, %.3fs wall\n" machines
      shards
      (if shards = 1 then "" else "s")
      wall;
    print_endline (Sea_cluster.Fleet_report.render report)
  with Invalid_argument e -> or_die (Error e)

let cluster_cmd =
  let machines_arg =
    let doc = "Number of machines in the fleet." in
    Arg.(value & opt int 4 & info [ "machines" ] ~docv:"N" ~docs:s_fleet ~doc)
  in
  let shards_arg =
    let doc =
      "OCaml domains to shard the fleet across (machine $(i,i) runs on shard \
       $(i,i) mod $(docv)). The merged report is byte-identical for every \
       shard count; only wall-clock time changes."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K" ~docs:s_fleet ~doc)
  in
  let policy_arg =
    let doc =
      "Tenant routing policy: $(b,round-robin), $(b,hash) \
       (consistent-hash-by-tenant), $(b,least-loaded) (by offered rate) or \
       $(b,cost-weighted) (offered rate scaled by the mix's static \
       certificate cost)."
    in
    Arg.(
      value
      & opt (enum Sea_cluster.Router.policies) Sea_cluster.Router.Round_robin
      & info [ "policy" ] ~docv:"POLICY" ~docs:s_fleet ~doc)
  in
  let tenants_arg =
    let doc =
      "Number of tenants routed across the fleet (default: 3 per machine)."
    in
    Arg.(value & opt (some int) None & info [ "tenants" ] ~docv:"N" ~docs:s_serve ~doc)
  in
  let trace_arg =
    let doc =
      "Write one Chrome trace_event JSON file per serving machine, named \
       $(docv).machine-<i>.json (idle machines are skipped)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PREFIX" ~docs:s_fleet ~doc)
  in
  let mttf_arg =
    let doc =
      "Enable machine churn: mean time to failure, seconds of simulated \
       time per machine (exponential fail-stop crashes). The churn plan is \
       seeded from $(b,--fault-seed)."
    in
    Arg.(value & opt (some float) None & info [ "mttf" ] ~docv:"SECONDS" ~docs:s_churn ~doc)
  in
  let mttr_arg =
    let doc = "Mean time to repair a crashed machine, seconds." in
    Arg.(value & opt float 2. & info [ "mttr" ] ~docv:"SECONDS" ~docs:s_churn ~doc)
  in
  let partition_arg =
    let doc =
      "Also net-partition each machine once, for $(docv) seconds at a \
       seed-chosen instant (the machine keeps running but is unreachable)."
    in
    Arg.(
      value & opt (some float) None
      & info [ "partition" ] ~docv:"SECONDS" ~docs:s_churn ~doc)
  in
  let link_loss_arg =
    let doc =
      "Per-message drop probability in [0,1) on the migration link state \
       blobs cross during failover."
    in
    Arg.(value & opt float 0. & info [ "link-loss" ] ~docv:"P" ~docs:s_churn ~doc)
  in
  let failover_arg =
    let doc =
      "$(b,on): heartbeat-detect dead machines, re-route their tenants over \
       the surviving ring and migrate resident PAL state by \
       seal-transfer-unseal. $(b,off): machines fail in place and their \
       traffic black-holes for the outage."
    in
    Arg.(value & opt string "on" & info [ "failover" ] ~docv:"on|off" ~docs:s_churn ~doc)
  in
  let autoscale_arg =
    let doc =
      "Enable the closed-loop autoscaler (needs $(b,--policy hash)): \
       $(b,static) samples load but never rebalances, $(b,migrate) moves \
       residents by sealed-state sePCR migration over the link, \
       $(b,spread) kill-and-respawns them on the target, $(b,auto) (alias \
       $(b,on)) migrates on proposed hardware and spreads elsewhere \
       (software launches cost ~25 us on $(b,--mode sfi))."
    in
    Arg.(
      value & opt (some string) None
      & info [ "autoscale" ] ~docv:"POLICY" ~docs:s_autoscale ~doc)
  in
  let scale_interval_arg =
    let doc =
      "Autoscale control-loop sampling period, seconds of simulated time \
       (default 1)."
    in
    Arg.(
      value & opt (some float) None
      & info [ "scale-interval" ] ~docv:"SECONDS" ~docs:s_autoscale ~doc)
  in
  let hot_threshold_arg =
    let doc =
      "Hot-spot detection threshold: a machine is hot above $(docv) times \
       the fleet's mean measured load, and regrows below the mean over \
       $(docv) (default 1.5; must exceed 1)."
    in
    Arg.(
      value & opt (some float) None
      & info [ "hot-threshold" ] ~docv:"X" ~docs:s_autoscale ~doc)
  in
  let shape_arg =
    let doc =
      "Traffic shape over the window: $(b,steady), $(b,diurnal) (one \
       sinusoidal day/night cycle, trough 0.25) or $(b,flash) (a 4x flash \
       crowd over the second quarter of the window)."
    in
    Arg.(
      value & opt string "steady"
      & info [ "shape" ] ~docv:"SHAPE" ~docs:s_autoscale ~doc)
  in
  let zipf_arg =
    let doc =
      "Heavy-tailed tenant popularity: split the open-loop rate \
       Zipf($(docv)) across tenants instead of evenly."
    in
    Arg.(
      value & opt (some float) None
      & info [ "zipf" ] ~docv:"ALPHA" ~docs:s_autoscale ~doc)
  in
  let man =
    [
      `S s_fleet; `S s_churn; `S s_autoscale; `S s_serve; `S s_admission;
      `S s_analysis; `S s_fault; `S s_vtpm; `S Manpage.s_options;
    ]
  in
  Cmd.v
    (Cmd.info "cluster" ~man
       ~doc:
         "Serve a multi-tenant load on a fleet of $(b,--machines) independent \
          machines, routed by $(b,--policy) and sharded across $(b,--shards) \
          OCaml domains, then merge the per-machine reports into one fleet \
          report (true cross-machine percentiles). Identical seeds give a \
          byte-identical fleet report regardless of $(b,--shards).")
    Term.(
      const run_cluster $ machine_arg $ serve_mode_arg $ machines_arg
      $ shards_arg $ policy_arg $ rate_arg $ duration_arg $ cores_arg
      $ tenants_arg $ depth_arg $ discipline_arg $ analyze_gate_arg
      $ admission_cost_arg $ cost_budget_arg $ timer_arg $ deadline_arg
      $ closed_arg $ think_arg $ seed_arg $ fault_rate_arg $ fault_kinds_arg
      $ fault_seed_arg $ vtpm_arg $ vtpm_batch_arg $ mttf_arg $ mttr_arg
      $ partition_arg $ link_loss_arg $ failover_arg $ autoscale_arg
      $ scale_interval_arg $ hot_threshold_arg $ shape_arg $ zipf_arg
      $ trace_arg)

(* --- main --- *)

let () =
  let info =
    Cmd.info "sea-cli" ~version:"1.0"
      ~doc:
        "Simulated minimal-TCB code execution (McCune et al., ASPLOS 2008). \
         Subcommands: machines, session, attest, lifecycle, attack, boot, \
         toctou, analyze, soundness, serve, cluster."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            machines_cmd; session_cmd; attest_cmd; lifecycle_cmd; attack_cmd;
            boot_cmd; toctou_cmd; analyze_cmd; soundness_cmd; serve_cmd;
            cluster_cmd;
          ]))
