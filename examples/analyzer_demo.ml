(* The static analyzer closes the loop that toctou_demo.ml opens: the
   vulnerable gate is rejected BEFORE SKINIT ever measures it, the
   hardened gate passes, and the measured gate is accepted with a
   warning because its prologue extends the PCR chain with the input.

   Run with: dune exec examples/analyzer_demo.exe *)

open Sea_core
open Sea_palvm
open Sea_analysis

let banner title =
  Printf.printf "\n== %s ==\n" title

let analyze_pal pal =
  let report = Analyzer.analyze pal.Pal.code in
  print_string (Report.render report);
  report

let () =
  Printf.printf
    "Static analysis of every PALVM image shipped in this repository.\n";

  banner "toctou-vulnerable (footnote 3's gate)";
  ignore (analyze_pal (Toctou.vulnerable_gate ()));

  banner "toctou-hardened (copy bounded to the buffer)";
  ignore (analyze_pal (Toctou.hardened_gate ()));

  banner "toctou-measured (input extended into the PCR chain)";
  ignore (analyze_pal (Toctou.measured_gate ()));

  List.iter
    (fun (name, code) ->
      banner name;
      ignore (analyze_pal (Samples.pal ~name ~code)))
    Samples.all;

  (* The same verdicts gate the launch path: under [Enforce] the
     vulnerable gate never reaches the TPM. *)
  banner "launch gate";
  let m = Sea_hw.Machine.create Sea_hw.Machine.hp_dc5750 in
  (match
     Session.execute m ~cpu:0 ~analyze:Analyzer.Enforce
       (Toctou.vulnerable_gate ()) ~input:Toctou.exploit_input
   with
  | Ok _ -> assert false
  | Error e -> Printf.printf "Enforce refused the vulnerable gate:\n  %s\n" e);
  match
    Session.execute m ~cpu:0 ~analyze:Analyzer.Enforce
      (Toctou.hardened_gate ()) ~input:Toctou.exploit_input
  with
  | Error e -> failwith e
  | Ok outcome ->
      Printf.printf "Enforce admitted the hardened gate; it says: %S\n"
        outcome.Session.output
