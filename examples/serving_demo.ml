(* The serving experiment in miniature: the same three tenants firing
   the same Poisson request stream at the same machine, once on today's
   hardware (every request a full SKINIT session, whole platform
   stalled) and once on the proposed hardware (resident suspended PALs,
   every core serving). Same seed, same workload — only the hardware
   differs. *)

let seed = 42L
let rate = 16. (* requests/s across all tenants *)
let duration = Sea_sim.Time.s 4.

let machine proposed =
  let config = Sea_hw.Machine.low_fidelity Sea_hw.Machine.hp_dc5750 in
  let config =
    if proposed then Sea_hw.Machine.proposed_variant config else config
  in
  Sea_hw.Machine.create ~engine:(Sea_sim.Engine.create ~seed ()) config

let serve mode =
  let proposed_hw =
    match mode with
    | Sea_serve.Server.Proposed -> true
    | Sea_serve.Server.Current | Sea_serve.Server.Sfi -> false
  in
  let m = machine proposed_hw in
  let cfg =
    Sea_serve.Server.config ~queue_depth:8 ~mode ~duration ()
  in
  let tenants = Sea_serve.Workload.preset ~tenants:3 (`Open rate) in
  match Sea_serve.Server.run m cfg tenants with
  | Ok report -> report
  | Error e ->
      Printf.eprintf "serving failed: %s\n" e;
      exit 1

let () =
  let current = serve Sea_serve.Server.Current in
  let proposed = serve Sea_serve.Server.Proposed in
  print_endline (Sea_serve.Report.render current);
  print_newline ();
  print_endline (Sea_serve.Report.render proposed);
  print_newline ();
  let goodput r =
    Sea_serve.Report.goodput_per_s r r.Sea_serve.Report.aggregate
  in
  Printf.printf
    "At %.0f req/s offered, today's hardware sustains %.2f req/s and the \
     proposed hardware %.2f req/s — %.0fx.\n"
    rate (goodput current) (goodput proposed)
    (goodput proposed /. goodput current)
